// RingRecorder — the always-on black box of the flight recorder (DESIGN.md
// §7, "obs v2").
//
// Where the TraceSink (trace.h) records *everything* and is installed only
// on request, the ring recorder is meant to run for the whole life of the
// process: each thread appends into a fixed-capacity ring of the last N
// events, so when something goes wrong — an audit violation, a fatal
// signal, a cancelled job, a watchdog-detected stall — the final moments of
// every thread can be dumped as a Chrome-trace snapshot with zero setup
// beforehand.
//
// Guarantees:
//   * lock-free recording: one relaxed load of the installed-recorder
//     pointer, one relaxed fetch_add, and four relaxed stores per event.
//     No allocation after a thread's first event, no lock ever on the
//     record path, no clock read beyond the one steady_clock sample.
//   * observation only: recording never draws RNG and never touches
//     placement state — placements are byte-identical with the recorder
//     installed or not (tests/test_obs pins this).
//   * async-signal-safe dumping: DumpToFd formats with local integer/string
//     helpers (no malloc, no stdio locks) and emits through write(2), so a
//     fatal-signal handler may call it. InstallCrashHandler wires exactly
//     that for SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT.
//   * racy-but-defined reads: slots are relaxed atomics, so a dump that
//     races a writer sees a torn *ring* (some slots old, some new) but
//     never torn fields and never undefined behavior; the black box is
//     best-effort forensics, not an exact log.
//
// Event names must be string literals (or otherwise outlive the recorder):
// slots store the pointer, not a copy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace p3d::obs {

class RingRecorder;

/// Installs `recorder` as the process-wide black box (nullptr disables).
/// Returns the previously installed recorder. Like the trace sink: swap
/// outside parallel regions; recording threads cache per-recorder state.
RingRecorder* InstallRingRecorder(RingRecorder* recorder);

/// The currently installed recorder, or nullptr when none.
RingRecorder* CurrentRingRecorder();

struct RingOptions {
  /// Events retained per thread; rounded up to a power of two, min 64.
  std::size_t capacity_per_thread = 4096;
};

class RingRecorder {
 public:
  enum class Kind : std::uint8_t { kSpan = 0, kCounter = 1, kInstant = 2 };

  using Options = RingOptions;

  explicit RingRecorder(const Options& options = {});
  ~RingRecorder();
  RingRecorder(const RingRecorder&) = delete;
  RingRecorder& operator=(const RingRecorder&) = delete;

  /// Nanoseconds since this recorder was constructed (steady clock).
  std::uint64_t NowNs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Records a completed span (ts = end time, as recorded at scope exit).
  void RecordSpan(const char* name, std::uint64_t end_ns,
                  std::uint64_t dur_ns) {
    Record(name, Kind::kSpan, end_ns, dur_ns, 0);
  }
  /// Records a counter sample.
  void RecordCounter(const char* name, std::int64_t value) {
    Record(name, Kind::kCounter, NowNs(), 0, value);
  }
  /// Records an instant marker with an optional value.
  void RecordInstant(const char* name, std::int64_t value = 0) {
    Record(name, Kind::kInstant, NowNs(), 0, value);
  }

  std::size_t capacity_per_thread() const { return capacity_; }
  /// Threads that have recorded at least one event so far.
  std::size_t NumThreads() const;
  /// Events currently retained across all rings (≤ threads * capacity).
  std::size_t NumEvents() const;

  /// One decoded slot, for tests and non-signal-path consumers.
  struct EventView {
    const char* name;
    Kind kind;
    std::uint64_t ts_ns;   // spans: end time
    std::uint64_t dur_ns;  // spans only
    std::int64_t value;    // counters / instants
    std::uint64_t seq;     // per-thread sequence number (0-based)
    int tid;
  };
  /// Decodes every ring, oldest event first per thread. Not signal-safe
  /// (allocates); safe to call while writers are active (relaxed reads).
  std::vector<EventView> Snapshot() const;

  /// Serializes the retained events as Chrome trace-event JSON through
  /// write(2), formatting into a fixed stack buffer — async-signal-safe.
  /// `reason` (a short literal, may be nullptr) is recorded as metadata.
  /// Returns false when any write failed.
  bool DumpToFd(int fd, const char* reason) const;

  /// Opens `path` (O_CREAT|O_TRUNC) and DumpToFd's into it. Also
  /// async-signal-safe (open/close are on the signal-safe list).
  bool DumpToFile(const char* path, const char* reason) const;

 private:
  // One retained event. Fields are relaxed atomics so a dump racing a
  // writer reads torn rings, never torn values (and stays TSan-clean).
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> ts_ns{0};
    std::atomic<std::uint64_t> dur_ns{0};
    std::atomic<std::int64_t> value{0};
    std::atomic<std::uint8_t> kind{0};
  };
  // Per-thread ring, linked into a lock-free list (push-only; nodes live
  // until the recorder dies, so the dump path never touches a lock).
  struct Ring {
    explicit Ring(std::size_t capacity) : slots(capacity) {}
    std::vector<Slot> slots;
    std::atomic<std::uint64_t> head{0};  // events ever recorded; owner-only
    int tid = 0;
    Ring* next = nullptr;  // immutable after publication
  };

  void Record(const char* name, Kind kind, std::uint64_t ts_ns,
              std::uint64_t dur_ns, std::int64_t value) {
    Ring* ring = ThreadRing();
    const std::uint64_t seq = ring->head.load(std::memory_order_relaxed);
    Slot& slot = ring->slots[seq & (capacity_ - 1)];
    slot.name.store(name, std::memory_order_relaxed);
    slot.ts_ns.store(ts_ns, std::memory_order_relaxed);
    slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
    slot.value.store(value, std::memory_order_relaxed);
    slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
    ring->head.store(seq + 1, std::memory_order_release);
  }

  Ring* ThreadRing();

  const std::uint64_t id_;      // process-unique, guards thread caches
  const std::size_t capacity_;  // power of two
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<Ring*> rings_{nullptr};  // lock-free push-only list
  std::atomic<int> next_tid_{0};
};

// ----- black-box plumbing ---------------------------------------------------
//
// The auto-dump triggers (audit violation, fatal signal, job cancellation,
// watchdog stall) all funnel through DumpBlackBox: it writes the installed
// recorder's snapshot to the configured path and is a no-op when either is
// missing, so subsystems call it unconditionally.

/// Sets the file the black box dumps to. The path is copied into a fixed
/// internal buffer (so the dump path stays signal-safe); paths longer than
/// 3975 bytes are rejected (returns false). Empty disables auto-dumps.
bool SetBlackBoxPath(const std::string& path);

/// The configured dump path ("" when unset).
const char* BlackBoxPath();

/// Dumps the installed recorder to the configured path, recording `reason`
/// (a short literal) in the snapshot. Async-signal-safe. Returns true only
/// when a recorder and a path were configured and every write succeeded.
/// Each dump overwrites the previous one — last anomaly wins, matching the
/// "final moments" semantics of a black box.
bool DumpBlackBox(const char* reason);

/// Total successful DumpBlackBox calls (tests, telemetry).
std::int64_t BlackBoxDumps();

/// Installs fatal-signal handlers (SIGSEGV, SIGBUS, SIGFPE, SIGILL,
/// SIGABRT) that DumpBlackBox("fatal_signal") and then re-raise with the
/// default disposition, so exit codes and core dumps are unchanged.
/// Idempotent; call once from a tool's main().
void InstallCrashHandler();

#if defined(P3D_OBS_DISABLED)
inline void RingNote(const char*, std::int64_t = 0) {}
#else
/// Records an instant marker into the installed black box (the always-on
/// analogue of TraceInstant; one relaxed load when no recorder is installed).
inline void RingNote(const char* name, std::int64_t value = 0) {
  if (RingRecorder* r = CurrentRingRecorder()) r->RecordInstant(name, value);
}
#endif  // P3D_OBS_DISABLED

}  // namespace p3d::obs
