#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace p3d::obs {
namespace {

std::atomic<MetricsRegistry*> g_metrics{nullptr};

// Thread-local override installed by ScopedThreadMetrics. The active flag
// distinguishes "no override" (fall through to g_metrics) from "override to
// nullptr" (recording silenced on this thread).
thread_local MetricsRegistry* tls_metrics = nullptr;
thread_local bool tls_metrics_active = false;

int BucketIndex(std::int64_t value) {
  if (value <= 0) return 0;
  int b = 1;
  while ((value >>= 1) != 0) ++b;
  return b;  // value in [2^(b-1), 2^b)
}

void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

// Prometheus metric names allow [a-zA-Z0-9_:]; our "subsystem/stat" names
// map slash (and anything else) to '_' under a "placer3d_" prefix.
std::string PrometheusName(const std::string& name) {
  std::string out = "placer3d_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendPrometheusValue(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

}  // namespace

double HistogramQuantile(const MetricsRegistry::Histogram& h, double q) {
  if (h.count <= 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(h.min);
  if (q >= 1.0) return static_cast<double>(h.max);
  // 0-based rank of the q-th sample; find the bucket that crosses it and
  // interpolate linearly across that bucket's value range.
  const double target = q * static_cast<double>(h.count - 1);
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    const std::int64_t in_bucket = h.buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) > target) {
      double lo = 0.0, hi = 0.0;
      if (i > 0) {
        lo = static_cast<double>(std::int64_t{1} << (i - 1));
        hi = static_cast<double>(std::int64_t{1} << i) - 1.0;
      }
      const double frac =
          in_bucket == 1
              ? 0.0
              : (target - static_cast<double>(cum)) /
                    static_cast<double>(in_bucket - 1);
      const double v = lo + frac * (hi - lo);
      // Clamp to the observed extrema: tighter than the bucket bounds.
      return std::min(static_cast<double>(h.max),
                      std::max(static_cast<double>(h.min), v));
    }
    cum += in_bucket;
  }
  return static_cast<double>(h.max);
}

std::string RenderPrometheus(const MetricsRegistry& registry) {
  std::string out;
  struct Rows {
    std::vector<std::pair<std::string, double>> counters, gauges;
    struct Summary {
      std::string name;
      double p50, p95, p99, sum;
      std::int64_t count;
    };
    std::vector<Summary> summaries;
  } rows;
  registry.ForEach(
      [&rows](const std::string& name, std::int64_t value) {
        rows.counters.emplace_back(PrometheusName(name),
                                   static_cast<double>(value));
      },
      [&rows](const std::string& name, double value) {
        rows.gauges.emplace_back(PrometheusName(name), value);
      },
      [&rows](const std::string& name, const MetricsRegistry::Histogram& h) {
        rows.summaries.push_back({PrometheusName(name),
                                  HistogramQuantile(h, 0.50),
                                  HistogramQuantile(h, 0.95),
                                  HistogramQuantile(h, 0.99),
                                  static_cast<double>(h.sum), h.count});
      });

  for (const auto& [name, value] : rows.counters) {
    out += "# HELP " + name + " placer3d counter\n";
    out += "# TYPE " + name + " counter\n" + name + " ";
    AppendPrometheusValue(&out, value);
    out += "\n";
  }
  for (const auto& [name, value] : rows.gauges) {
    out += "# HELP " + name + " placer3d gauge\n";
    out += "# TYPE " + name + " gauge\n" + name + " ";
    AppendPrometheusValue(&out, value);
    out += "\n";
  }
  for (const auto& s : rows.summaries) {
    out += "# HELP " + s.name + " placer3d histogram summary\n";
    out += "# TYPE " + s.name + " summary\n";
    for (const auto& [label, v] :
         {std::pair<const char*, double>{"0.5", s.p50},
          {"0.95", s.p95},
          {"0.99", s.p99}}) {
      out += s.name + "{quantile=\"" + label + "\"} ";
      AppendPrometheusValue(&out, v);
      out += "\n";
    }
    out += s.name + "_sum ";
    AppendPrometheusValue(&out, s.sum);
    out += "\n" + s.name + "_count " + std::to_string(s.count) + "\n";
  }
  return out;
}

MetricsRegistry* InstallMetrics(MetricsRegistry* registry) {
  return g_metrics.exchange(registry, std::memory_order_acq_rel);
}

MetricsRegistry* CurrentMetrics() {
  if (tls_metrics_active) return tls_metrics;
  return g_metrics.load(std::memory_order_acquire);
}

ScopedThreadMetrics::ScopedThreadMetrics(MetricsRegistry* registry)
    : previous_(tls_metrics), previous_active_(tls_metrics_active) {
  tls_metrics = registry;
  tls_metrics_active = true;
}

ScopedThreadMetrics::~ScopedThreadMetrics() {
  tls_metrics = previous_;
  tls_metrics_active = previous_active_;
}

void MetricsRegistry::Add(const std::string& name, std::int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::Observe(const std::string& name, std::int64_t value) {
  value = std::max<std::int64_t>(value, 0);
  std::lock_guard<std::mutex> lock(mutex_);
  Histogram& h = histograms_[name];
  if (h.count == 0) {
    h.min = h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  h.count += 1;
  h.sum += value;
  const int b = BucketIndex(value);
  if (static_cast<std::size_t>(b) >= h.buckets.size()) {
    h.buckets.resize(static_cast<std::size_t>(b) + 1, 0);
  }
  h.buckets[static_cast<std::size_t>(b)] += 1;
}

void MetricsRegistry::Set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::Accumulate(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  accumulators_[name] += delta;
}

void MetricsRegistry::Append(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  series_[name].push_back(value);
}

std::int64_t MetricsRegistry::Counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

double MetricsRegistry::Gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0.0;
}

const std::vector<double>* MetricsRegistry::Series(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find(name);
  return it != series_.end() ? &it->second : nullptr;
}

const MetricsRegistry::Histogram* MetricsRegistry::Hist(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

void MetricsRegistry::ForEach(
    const std::function<void(const std::string&, std::int64_t)>& counter,
    const std::function<void(const std::string&, double)>& gauge,
    const std::function<void(const std::string&, const Histogram&)>& hist)
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counter) {
    for (const auto& [name, v] : counters_) counter(name, v);
  }
  if (gauge) {
    for (const auto& [name, v] : gauges_) gauge(name, v);
    for (const auto& [name, v] : accumulators_) gauge(name, v);
  }
  if (hist) {
    for (const auto& [name, h] : histograms_) hist(name, h);
  }
}

std::string MetricsRegistry::DumpDeterministic() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, v] : counters_) {
    out += "counter " + name + " = " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : gauges_) {
    out += "gauge " + name + " = ";
    AppendDouble(&out, v);
    out += "\n";
  }
  for (const auto& [name, v] : accumulators_) {
    out += "accum " + name + " = ";
    AppendDouble(&out, v);
    out += "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "hist " + name + " count " + std::to_string(h.count) + " sum " +
           std::to_string(h.sum) + " min " + std::to_string(h.min) + " max " +
           std::to_string(h.max);
    // Quantiles are pure functions of the (commutative, thread-invariant)
    // buckets, so they are safe in the deterministic dump.
    for (const auto& [label, q] : {std::pair<const char*, double>{"p50", 0.50},
                                   {"p95", 0.95},
                                   {"p99", 0.99}}) {
      out += std::string(" ") + label + " ";
      AppendDouble(&out, HistogramQuantile(h, q));
    }
    out += "\n";
  }
  for (const auto& [name, s] : series_) {
    out += "series " + name + " =";
    for (const double v : s) {
      out += " ";
      AppendDouble(&out, v);
    }
    out += "\n";
  }
  return out;
}

JsonValue MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue doc = JsonValue::MakeObject();

  JsonValue counters = JsonValue::MakeObject();
  for (const auto& [name, v] : counters_) counters.Set(name, JsonValue(v));
  doc.Set("counters", std::move(counters));

  JsonValue gauges = JsonValue::MakeObject();
  for (const auto& [name, v] : gauges_) gauges.Set(name, JsonValue(v));
  for (const auto& [name, v] : accumulators_) gauges.Set(name, JsonValue(v));
  doc.Set("gauges", std::move(gauges));

  JsonValue hists = JsonValue::MakeObject();
  for (const auto& [name, h] : histograms_) {
    JsonValue hj = JsonValue::MakeObject();
    hj.Set("count", JsonValue(h.count));
    hj.Set("sum", JsonValue(h.sum));
    hj.Set("min", JsonValue(h.min));
    hj.Set("max", JsonValue(h.max));
    hj.Set("p50", JsonValue(HistogramQuantile(h, 0.50)));
    hj.Set("p95", JsonValue(HistogramQuantile(h, 0.95)));
    hj.Set("p99", JsonValue(HistogramQuantile(h, 0.99)));
    JsonValue buckets = JsonValue::MakeArray();
    for (const std::int64_t b : h.buckets) buckets.Push(JsonValue(b));
    hj.Set("pow2_buckets", std::move(buckets));
    hists.Set(name, std::move(hj));
  }
  doc.Set("histograms", std::move(hists));

  JsonValue series = JsonValue::MakeObject();
  for (const auto& [name, s] : series_) {
    JsonValue arr = JsonValue::MakeArray();
    for (const double v : s) arr.Push(JsonValue(v));
    series.Set(name, std::move(arr));
  }
  doc.Set("series", std::move(series));
  return doc;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  accumulators_.clear();
  histograms_.clear();
  series_.clear();
}

}  // namespace p3d::obs
