// Thread-aware hierarchical scope tracer with Chrome trace-event output.
//
// The flight recorder's tracing half (DESIGN.md "Observability"): RAII
// `TraceScope` spans and `TraceCounter` samples are buffered per thread and
// serialized as Chrome trace-event JSON ("traceEvents" array of ph="X"/"C"
// records) that loads directly in Perfetto / chrome://tracing.
//
// Overhead policy:
//   * disabled (no sink installed, the default): every entry point is an
//     inline check of one relaxed atomic load — no allocation, no lock, no
//     clock read. Compiling with -DP3D_OBS_DISABLED removes even that load
//     (TraceScope becomes an empty literal type).
//   * enabled: events append to a per-thread buffer (amortized O(1), no
//     lock after a thread's first event); timestamps come from one
//     steady_clock read per scope edge. Instrumentation sits at phase /
//     level / pass / solve granularity, never inside per-cell inner loops,
//     which keeps the enabled overhead under the 5% budget.
//
// Determinism: tracing is observation only — it never draws RNG, never
// touches placement state, and placement bytes are identical with tracing
// on or off (tests/test_obs pins this). Trace *content* (timestamps, thread
// ids) naturally varies run to run; nothing downstream consumes it.
//
// Event names must be string literals (or otherwise outlive the sink): the
// buffers store the pointer, not a copy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/ring.h"

namespace p3d::obs {

class TraceSink;

/// Installs `sink` as the process-wide trace destination (nullptr disables
/// tracing). Returns the previously installed sink. Not synchronized with
/// in-flight events: install/uninstall between parallel regions (e.g. around
/// a whole placer run), not during one.
TraceSink* InstallTraceSink(TraceSink* sink);

/// The currently installed sink, or nullptr when tracing is disabled.
TraceSink* CurrentTraceSink();

class TraceSink {
 public:
  TraceSink();
  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Nanoseconds since this sink was constructed (steady clock).
  std::uint64_t NowNs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Records a completed span [start_ns, start_ns + dur_ns). Thread-safe.
  void RecordSpan(const char* name, std::uint64_t start_ns,
                  std::uint64_t dur_ns);
  /// Records a counter sample (rendered as a track in Perfetto). Thread-safe.
  void RecordCounter(const char* name, std::int64_t value);
  /// Records an instant event. Thread-safe.
  void RecordInstant(const char* name);

  /// Total events across all thread buffers. Call when no writers are active.
  std::size_t NumEvents() const;

  /// Serializes everything recorded so far as a Chrome trace-event JSON
  /// document. Call when no writers are active (e.g. after the placer run).
  std::string SerializeChromeJson() const;

  /// SerializeChromeJson straight to a file; false on I/O error.
  bool WriteChromeJson(const std::string& path) const;

 private:
  enum class Kind : std::uint8_t { kSpan, kCounter, kInstant };
  struct Event {
    const char* name;
    std::uint64_t ts_ns;
    std::uint64_t dur_ns;  // spans only
    std::int64_t value;    // counters only
    Kind kind;
  };
  struct Buffer {
    std::vector<Event> events;
    int tid = 0;
  };

  Buffer* ThreadBuffer();

  const std::uint64_t id_;  // process-unique, guards thread-local caches
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;  // guards buffers_ vector growth
  std::vector<std::unique_ptr<Buffer>> buffers_;

  friend class TraceScope;
};

#if defined(P3D_OBS_DISABLED)

/// Compile-time no-op variant: an empty literal type the optimizer deletes.
class TraceScope {
 public:
  explicit TraceScope(const char*) {}
};
inline void TraceCounter(const char*, std::int64_t) {}
inline void TraceInstant(const char*) {}

#else

/// RAII span: records [construction, destruction) under `name` on the
/// current thread's track. `name` must be a string literal. Every span is
/// mirrored into the always-on ring recorder (obs/ring.h) when one is
/// installed, so the black box sees the same phase/pass/solve taxonomy the
/// full trace does — at two relaxed loads per scope when both are off.
class TraceScope {
 public:
  explicit TraceScope(const char* name)
      : sink_(CurrentTraceSink()), ring_(CurrentRingRecorder()), name_(name) {
    if (sink_ != nullptr) start_ns_ = sink_->NowNs();
    if (ring_ != nullptr) ring_start_ns_ = ring_->NowNs();
  }
  ~TraceScope() {
    if (sink_ != nullptr) {
      sink_->RecordSpan(name_, start_ns_, sink_->NowNs() - start_ns_);
    }
    if (ring_ != nullptr) {
      const std::uint64_t end_ns = ring_->NowNs();
      ring_->RecordSpan(name_, end_ns, end_ns - ring_start_ns_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceSink* const sink_;
  RingRecorder* const ring_;
  const char* const name_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t ring_start_ns_ = 0;
};

inline void TraceCounter(const char* name, std::int64_t value) {
  if (TraceSink* sink = CurrentTraceSink()) sink->RecordCounter(name, value);
  if (RingRecorder* ring = CurrentRingRecorder()) {
    ring->RecordCounter(name, value);
  }
}

inline void TraceInstant(const char* name) {
  if (TraceSink* sink = CurrentTraceSink()) sink->RecordInstant(name);
  if (RingRecorder* ring = CurrentRingRecorder()) ring->RecordInstant(name);
}

#endif  // P3D_OBS_DISABLED

}  // namespace p3d::obs
