#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace p3d::obs {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    out->append("null");
    return;
  }
  // Integers within the exactly-representable range print without an
  // exponent or trailing ".0" so counters stay grepable.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out->append(buf);
    return;
  }
  char buf[40];
  // Try the shortest representation that round-trips.
  for (const int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == d) break;
  }
  out->append(buf);
}

void Indent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<std::size_t>(indent * depth), ' ');
}

// ---------------------------------------------------------------------------
// Parser: straightforward recursive descent over the byte string.

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;
  int depth = 0;
  static constexpr int kMaxDepth = 200;

  explicit Parser(const std::string& t) : text(t) {}

  bool Fail(const char* message) {
    if (error.empty()) {
      error = "at byte " + std::to_string(pos) + ": " + message;
    }
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text.compare(pos, n, lit) != 0) return Fail("invalid literal");
    pos += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos >= text.size() || text[pos] != '"') return Fail("expected string");
    ++pos;
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos >= text.size()) return Fail("truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape digit");
          }
          // UTF-8 encode the code point (surrogate pairs are not combined;
          // our writer only emits \u for control characters).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos == start) return Fail("expected number");
    double d = 0.0;
    const std::string token = text.substr(start, pos - start);
    if (std::sscanf(token.c_str(), "%lf", &d) != 1) return Fail("bad number");
    *out = JsonValue(d);
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (++depth > kMaxDepth) return Fail("nesting too deep");
    SkipWs();
    if (pos >= text.size()) return Fail("unexpected end of input");
    bool ok = false;
    switch (text[pos]) {
      case 'n':
        ok = Literal("null");
        if (ok) *out = JsonValue();
        break;
      case 't':
        ok = Literal("true");
        if (ok) *out = JsonValue(true);
        break;
      case 'f':
        ok = Literal("false");
        if (ok) *out = JsonValue(false);
        break;
      case '"': {
        std::string s;
        ok = ParseString(&s);
        if (ok) *out = JsonValue(std::move(s));
        break;
      }
      case '[': {
        ++pos;
        *out = JsonValue::MakeArray();
        SkipWs();
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          ok = true;
          break;
        }
        while (true) {
          JsonValue elem;
          if (!ParseValue(&elem)) return false;
          out->Push(std::move(elem));
          SkipWs();
          if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
          }
          if (pos < text.size() && text[pos] == ']') {
            ++pos;
            ok = true;
            break;
          }
          return Fail("expected ',' or ']'");
        }
        break;
      }
      case '{': {
        ++pos;
        *out = JsonValue::MakeObject();
        SkipWs();
        if (pos < text.size() && text[pos] == '}') {
          ++pos;
          ok = true;
          break;
        }
        while (true) {
          SkipWs();
          std::string key;
          if (!ParseString(&key)) return false;
          SkipWs();
          if (pos >= text.size() || text[pos] != ':') return Fail("expected ':'");
          ++pos;
          JsonValue member;
          if (!ParseValue(&member)) return false;
          out->Set(std::move(key), std::move(member));
          SkipWs();
          if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
          }
          if (pos < text.size() && text[pos] == '}') {
            ++pos;
            ok = true;
            break;
          }
          return Fail("expected ',' or '}'");
        }
        break;
      }
      default:
        ok = ParseNumber(out);
    }
    --depth;
    return ok;
  }
};

}  // namespace

void JsonValue::SerializeTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      break;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Kind::kNumber:
      AppendNumber(out, num_);
      break;
    case Kind::kString:
      AppendEscaped(out, str_);
      break;
    case Kind::kArray: {
      out->push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Indent(out, indent, depth + 1);
        array_[i].SerializeTo(out, indent, depth + 1);
      }
      if (!array_.empty()) Indent(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      out->push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Indent(out, indent, depth + 1);
        AppendEscaped(out, object_[i].first);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        object_[i].second.SerializeTo(out, indent, depth + 1);
      }
      if (!object_.empty()) Indent(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(&out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string JsonValue::SerializePretty() const {
  std::string out;
  SerializeTo(&out, /*indent=*/2, /*depth=*/0);
  out.push_back('\n');
  return out;
}

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  Parser parser(text);
  if (!parser.ParseValue(out)) {
    if (error != nullptr) *error = parser.error;
    return false;
  }
  parser.SkipWs();
  if (parser.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at byte " + std::to_string(parser.pos);
    }
    return false;
  }
  return true;
}

}  // namespace p3d::obs
