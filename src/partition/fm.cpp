#include "partition/fm.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace p3d::partition {
namespace {

/// Doubly-linked gain bucket array over vertex ids, one instance per side.
/// Gains are bounded by +-pmax (sum of incident quantized net weights).
class GainBuckets {
 public:
  GainBuckets(std::int32_t num_verts, std::int64_t pmax)
      : offset_(pmax),
        head_(static_cast<std::size_t>(2 * pmax + 1), -1),
        next_(static_cast<std::size_t>(num_verts), -1),
        prev_(static_cast<std::size_t>(num_verts), -1),
        in_(static_cast<std::size_t>(num_verts), false),
        max_idx_(-1) {}

  bool Contains(std::int32_t v) const { return in_[static_cast<std::size_t>(v)]; }

  void Insert(std::int32_t v, std::int64_t gain) {
    assert(!in_[static_cast<std::size_t>(v)]);
    const std::int64_t idx = gain + offset_;
    assert(idx >= 0 && idx < static_cast<std::int64_t>(head_.size()));
    next_[static_cast<std::size_t>(v)] = head_[static_cast<std::size_t>(idx)];
    prev_[static_cast<std::size_t>(v)] = -1;
    if (head_[static_cast<std::size_t>(idx)] >= 0) {
      prev_[static_cast<std::size_t>(head_[static_cast<std::size_t>(idx)])] = v;
    }
    head_[static_cast<std::size_t>(idx)] = v;
    in_[static_cast<std::size_t>(v)] = true;
    max_idx_ = std::max(max_idx_, idx);
  }

  void Remove(std::int32_t v, std::int64_t gain) {
    assert(in_[static_cast<std::size_t>(v)]);
    const std::int64_t idx = gain + offset_;
    const std::int32_t nx = next_[static_cast<std::size_t>(v)];
    const std::int32_t pv = prev_[static_cast<std::size_t>(v)];
    if (nx >= 0) prev_[static_cast<std::size_t>(nx)] = pv;
    if (pv >= 0) {
      next_[static_cast<std::size_t>(pv)] = nx;
    } else {
      head_[static_cast<std::size_t>(idx)] = nx;
    }
    in_[static_cast<std::size_t>(v)] = false;
  }

  void UpdateGain(std::int32_t v, std::int64_t old_gain, std::int64_t new_gain) {
    Remove(v, old_gain);
    Insert(v, new_gain);
  }

  /// Highest-gain vertex, or -1 if empty. max gain returned via out param.
  std::int32_t Top(std::int64_t* gain) {
    while (max_idx_ >= 0 && head_[static_cast<std::size_t>(max_idx_)] < 0) {
      --max_idx_;
    }
    if (max_idx_ < 0) return -1;
    *gain = max_idx_ - offset_;
    return head_[static_cast<std::size_t>(max_idx_)];
  }

 private:
  std::int64_t offset_;
  std::vector<std::int32_t> head_;
  std::vector<std::int32_t> next_;
  std::vector<std::int32_t> prev_;
  std::vector<bool> in_;
  std::int64_t max_idx_;
};

struct PassState {
  std::vector<std::int64_t> gain;
  std::vector<bool> locked;
  std::vector<std::int32_t> cnt0;  // free+fixed vertices per net on side 0
  std::vector<std::int32_t> cnt1;
};

}  // namespace

FmStats RefineFm(const Hypergraph& hg, std::vector<std::int8_t>* side_ptr,
                 const FmOptions& options, util::Rng& rng) {
  auto& side = *side_ptr;
  const std::int32_t nv = hg.NumVerts();
  FmStats stats;
  stats.initial_cut_q = hg.CutCostQ(side);
  stats.final_cut_q = stats.initial_cut_q;
  if (nv == 0) {
    stats.feasible = true;
    return stats;
  }

  // Max possible |gain| per vertex = sum of incident quantized net weights.
  std::int64_t pmax = 1;
  for (std::int32_t v = 0; v < nv; ++v) {
    std::int64_t s = 0;
    for (const std::int32_t n : hg.VertNets(v)) s += hg.NetWeightQ(n);
    pmax = std::max(pmax, s);
  }

  std::int64_t pw0 = hg.PartWeightQ(side, 0);
  const std::int64_t min0 = options.min_part0_weight_q;
  const std::int64_t max0 = options.max_part0_weight_q;
  auto feasible = [&](std::int64_t w0) { return w0 >= min0 && w0 <= max0; };
  // Distance from feasibility, used to repair unbalanced partitions.
  auto infeas = [&](std::int64_t w0) -> std::int64_t {
    if (w0 < min0) return min0 - w0;
    if (w0 > max0) return w0 - max0;
    return 0;
  };

  PassState st;
  st.gain.resize(static_cast<std::size_t>(nv));
  st.locked.resize(static_cast<std::size_t>(nv));
  st.cnt0.resize(static_cast<std::size_t>(hg.NumNets()));
  st.cnt1.resize(static_cast<std::size_t>(hg.NumNets()));

  // Visit order randomization decorrelates repeated runs.
  std::vector<std::int32_t> order(static_cast<std::size_t>(nv));
  for (std::int32_t v = 0; v < nv; ++v) order[static_cast<std::size_t>(v)] = v;

  std::int64_t cur_cut = stats.initial_cut_q;

  for (int pass = 0; pass < options.max_passes; ++pass) {
    stats.passes = pass + 1;

    // --- initialize pass state -------------------------------------------
    std::fill(st.cnt0.begin(), st.cnt0.end(), 0);
    std::fill(st.cnt1.begin(), st.cnt1.end(), 0);
    for (std::int32_t n = 0; n < hg.NumNets(); ++n) {
      for (const std::int32_t v : hg.NetVerts(n)) {
        if (side[static_cast<std::size_t>(v)] == 0) {
          st.cnt0[static_cast<std::size_t>(n)] += 1;
        } else {
          st.cnt1[static_cast<std::size_t>(n)] += 1;
        }
      }
    }
    std::fill(st.locked.begin(), st.locked.end(), false);

    GainBuckets buckets0(nv, pmax);  // movable vertices currently on side 0
    GainBuckets buckets1(nv, pmax);
    rng.Shuffle(order);
    for (const std::int32_t v : order) {
      if (hg.Fixed(v) != FixedSide::kFree) continue;
      std::int64_t g = 0;
      const int from = side[static_cast<std::size_t>(v)];
      for (const std::int32_t n : hg.VertNets(v)) {
        const std::int32_t cf = from == 0 ? st.cnt0[static_cast<std::size_t>(n)]
                                          : st.cnt1[static_cast<std::size_t>(n)];
        const std::int32_t ct = from == 0 ? st.cnt1[static_cast<std::size_t>(n)]
                                          : st.cnt0[static_cast<std::size_t>(n)];
        if (cf == 1) g += hg.NetWeightQ(n);
        if (ct == 0) g -= hg.NetWeightQ(n);
      }
      st.gain[static_cast<std::size_t>(v)] = g;
      (from == 0 ? buckets0 : buckets1).Insert(v, g);
    }

    // --- move loop -----------------------------------------------------------
    struct Undo {
      std::int32_t vertex;
    };
    std::vector<Undo> moves;
    moves.reserve(static_cast<std::size_t>(nv));
    std::int64_t best_cut = cur_cut;
    std::int64_t best_infeas = infeas(pw0);
    std::size_t best_prefix = 0;
    int non_improving = 0;

    while (true) {
      std::int64_t g0 = std::numeric_limits<std::int64_t>::min();
      std::int64_t g1 = std::numeric_limits<std::int64_t>::min();
      const std::int32_t v0 = buckets0.Top(&g0);
      const std::int32_t v1 = buckets1.Top(&g1);
      if (v0 < 0 && v1 < 0) break;

      // A move is admissible if the balance after it is feasible, or strictly
      // less infeasible than now (repair mode).
      const std::int64_t cur_inf = infeas(pw0);
      auto admissible = [&](std::int32_t v, int from) {
        const std::int64_t wv = hg.VertWeightQ(v);
        const std::int64_t w0_after = from == 0 ? pw0 - wv : pw0 + wv;
        return feasible(w0_after) || infeas(w0_after) < cur_inf;
      };

      int from = -1;
      std::int32_t v = -1;
      const bool ok0 = v0 >= 0 && admissible(v0, 0);
      const bool ok1 = v1 >= 0 && admissible(v1, 1);
      if (ok0 && ok1) {
        if (g0 != g1) {
          from = g0 > g1 ? 0 : 1;
        } else {
          // Tie: move from the heavier side to improve balance headroom.
          from = pw0 * 2 >= hg.TotalVertWeightQ() ? 0 : 1;
        }
      } else if (ok0) {
        from = 0;
      } else if (ok1) {
        from = 1;
      } else {
        break;  // no admissible move
      }
      v = from == 0 ? v0 : v1;
      const std::int64_t g = from == 0 ? g0 : g1;
      const int to = 1 - from;

      // Execute the move.
      (from == 0 ? buckets0 : buckets1).Remove(v, g);
      st.locked[static_cast<std::size_t>(v)] = true;
      const std::int64_t wv = hg.VertWeightQ(v);
      pw0 += from == 0 ? -wv : wv;
      cur_cut -= g;
      side[static_cast<std::size_t>(v)] = static_cast<std::int8_t>(to);
      moves.push_back({v});

      // Standard FM incremental gain updates.
      for (const std::int32_t n : hg.VertNets(v)) {
        auto& cf = from == 0 ? st.cnt0[static_cast<std::size_t>(n)]
                             : st.cnt1[static_cast<std::size_t>(n)];
        auto& ct = from == 0 ? st.cnt1[static_cast<std::size_t>(n)]
                             : st.cnt0[static_cast<std::size_t>(n)];
        const std::int32_t w = hg.NetWeightQ(n);
        auto bump = [&](std::int32_t u, std::int64_t delta) {
          if (st.locked[static_cast<std::size_t>(u)]) return;
          if (hg.Fixed(u) != FixedSide::kFree) return;
          auto& bk = side[static_cast<std::size_t>(u)] == 0 ? buckets0 : buckets1;
          const std::int64_t old = st.gain[static_cast<std::size_t>(u)];
          st.gain[static_cast<std::size_t>(u)] = old + delta;
          bk.UpdateGain(u, old, old + delta);
        };
        // Before-move bookkeeping (counts still reflect pre-move state).
        if (ct == 0) {
          for (const std::int32_t u : hg.NetVerts(n)) {
            if (u != v) bump(u, w);
          }
        } else if (ct == 1) {
          for (const std::int32_t u : hg.NetVerts(n)) {
            if (u != v && side[static_cast<std::size_t>(u)] == to) bump(u, -w);
          }
        }
        cf -= 1;
        ct += 1;
        if (cf == 0) {
          for (const std::int32_t u : hg.NetVerts(n)) {
            if (u != v) bump(u, -w);
          }
        } else if (cf == 1) {
          for (const std::int32_t u : hg.NetVerts(n)) {
            if (u != v && side[static_cast<std::size_t>(u)] == from) bump(u, w);
          }
        }
      }

      // Track the best prefix: prefer feasibility, then cut.
      const std::int64_t inf_now = infeas(pw0);
      const bool better = (inf_now < best_infeas) ||
                          (inf_now == best_infeas && cur_cut < best_cut);
      if (better) {
        best_cut = cur_cut;
        best_infeas = inf_now;
        best_prefix = moves.size();
        non_improving = 0;
      } else {
        ++non_improving;
        if (options.early_exit_moves > 0 &&
            non_improving >= options.early_exit_moves) {
          break;
        }
      }
    }

    // --- roll back to the best prefix --------------------------------------
    for (std::size_t i = moves.size(); i > best_prefix; --i) {
      const std::int32_t v = moves[i - 1].vertex;
      const int cur = side[static_cast<std::size_t>(v)];
      // The vertex leaves side `cur` and returns to side `1 - cur`.
      side[static_cast<std::size_t>(v)] = static_cast<std::int8_t>(1 - cur);
      pw0 += cur == 0 ? -hg.VertWeightQ(v) : hg.VertWeightQ(v);
    }
    cur_cut = best_cut;

    if (best_prefix == 0) break;  // pass made no improvement
  }

  stats.final_cut_q = cur_cut;
  stats.feasible = feasible(pw0);
  return stats;
}

}  // namespace partition
