#include "partition/hypergraph.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace p3d::partition {
namespace {

// Quantization caps. Net gains are sums of incident net weights, so keeping
// individual weights small keeps the FM bucket arrays compact.
constexpr std::int32_t kMaxNetWeightQ = 4096;
constexpr std::int64_t kMaxVertWeightQ = 1'000'000'000LL;

}  // namespace

std::int32_t Hypergraph::AddVertex(double weight, FixedSide fixed) {
  assert(!finalized_);
  vert_weight_.push_back(weight);
  fixed_.push_back(fixed);
  return NumVerts() - 1;
}

std::int32_t Hypergraph::AddNet(double weight,
                                std::span<const std::int32_t> verts) {
  assert(!finalized_);
  net_weight_.push_back(weight);
  // Deduplicate pins (a net may touch a cell through several pins).
  std::vector<std::int32_t> unique(verts.begin(), verts.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  net_verts_.insert(net_verts_.end(), unique.begin(), unique.end());
  net_ptr_.push_back(static_cast<std::int32_t>(net_verts_.size()));
  return NumNets() - 1;
}

void Hypergraph::Finalize() {
  if (finalized_) return;

  // --- vertex -> nets CSR -------------------------------------------------
  vert_ptr_.assign(vert_weight_.size() + 1, 0);
  for (const std::int32_t v : net_verts_) {
    assert(v >= 0 && v < NumVerts());
    vert_ptr_[static_cast<std::size_t>(v) + 1] += 1;
  }
  for (std::size_t i = 0; i < vert_weight_.size(); ++i) {
    vert_ptr_[i + 1] += vert_ptr_[i];
  }
  vert_nets_.assign(net_verts_.size(), 0);
  std::vector<std::int32_t> cursor(vert_ptr_.begin(), vert_ptr_.end() - 1);
  for (std::int32_t n = 0; n < NumNets(); ++n) {
    for (std::int32_t k = net_ptr_[static_cast<std::size_t>(n)];
         k < net_ptr_[static_cast<std::size_t>(n) + 1]; ++k) {
      const std::int32_t v = net_verts_[static_cast<std::size_t>(k)];
      vert_nets_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = n;
    }
  }

  // --- weight quantization --------------------------------------------------
  // Net weights: the *largest* weight maps to kMaxNetWeightQ/2, preserving
  // the relative magnitude of every weight below it. Weights smaller than
  // the resolution quantize to 0 and simply stop influencing cuts (scaling
  // off the minimum instead would saturate everything above it at the cap
  // and grossly inflate tiny weights, e.g. thermal-resistance-reduction
  // nets vs regular nets).
  double max_net_w = 0.0;
  for (const double w : net_weight_) max_net_w = std::max(max_net_w, w);
  net_weight_q_.resize(net_weight_.size());
  if (max_net_w <= 0.0) {
    std::fill(net_weight_q_.begin(), net_weight_q_.end(), 0);
  } else {
    const double scale = (kMaxNetWeightQ / 2.0) / max_net_w;
    for (std::size_t i = 0; i < net_weight_.size(); ++i) {
      const double q = net_weight_[i] * scale;
      net_weight_q_[i] = static_cast<std::int32_t>(
          std::clamp(std::lround(q), 0L, static_cast<long>(kMaxNetWeightQ)));
    }
  }

  // Vertex weights: resolution = min positive weight / 16. Zero-weight
  // vertices (fixed terminals) stay zero so they never affect balance.
  double min_vert_w = 0.0;
  for (const double w : vert_weight_) {
    if (w > 0.0 && (min_vert_w == 0.0 || w < min_vert_w)) min_vert_w = w;
  }
  vert_weight_q_.resize(vert_weight_.size());
  total_vert_weight_q_ = 0;
  if (min_vert_w == 0.0) {
    std::fill(vert_weight_q_.begin(), vert_weight_q_.end(), 0);
  } else {
    const double scale = 16.0 / min_vert_w;
    for (std::size_t i = 0; i < vert_weight_.size(); ++i) {
      const double q = vert_weight_[i] * scale;
      vert_weight_q_[i] = std::clamp(
          static_cast<std::int64_t>(std::llround(q)), std::int64_t{0},
          kMaxVertWeightQ);
      if (vert_weight_[i] > 0.0 && vert_weight_q_[i] == 0) vert_weight_q_[i] = 1;
      total_vert_weight_q_ += vert_weight_q_[i];
    }
  }

  finalized_ = true;
}

std::int64_t Hypergraph::PartWeightQ(const std::vector<std::int8_t>& side,
                                     int part) const {
  std::int64_t w = 0;
  for (std::int32_t v = 0; v < NumVerts(); ++v) {
    if (side[static_cast<std::size_t>(v)] == part) w += VertWeightQ(v);
  }
  return w;
}

double Hypergraph::CutCost(const std::vector<std::int8_t>& side) const {
  double cut = 0.0;
  for (std::int32_t n = 0; n < NumNets(); ++n) {
    const auto verts = NetVerts(n);
    if (verts.empty()) continue;
    const std::int8_t first = side[static_cast<std::size_t>(verts.front())];
    for (const std::int32_t v : verts) {
      if (side[static_cast<std::size_t>(v)] != first) {
        cut += NetWeight(n);
        break;
      }
    }
  }
  return cut;
}

std::int64_t Hypergraph::CutCostQ(const std::vector<std::int8_t>& side) const {
  std::int64_t cut = 0;
  for (std::int32_t n = 0; n < NumNets(); ++n) {
    const auto verts = NetVerts(n);
    if (verts.empty()) continue;
    const std::int8_t first = side[static_cast<std::size_t>(verts.front())];
    for (const std::int32_t v : verts) {
      if (side[static_cast<std::size_t>(v)] != first) {
        cut += NetWeightQ(n);
        break;
      }
    }
  }
  return cut;
}

}  // namespace p3d::partition
