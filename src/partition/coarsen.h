// FirstChoice/heavy-edge coarsening for the multilevel partitioner.
#pragma once

#include <cstdint>
#include <vector>

#include "partition/hypergraph.h"
#include "util/rng.h"

namespace p3d::partition {

struct CoarseLevel {
  Hypergraph hg;                      // the coarse hypergraph (finalized)
  std::vector<std::int32_t> fine_to_coarse;  // per fine vertex
};

/// One coarsening step. Free vertices are matched to the unmatched neighbour
/// with the highest hyperedge connectivity score sum(w_n / (|n|-1)), subject
/// to the combined quantized weight not exceeding `max_vert_weight_q` (keeps
/// the coarsest balance problem solvable). Fixed vertices are never matched.
CoarseLevel CoarsenOnce(const Hypergraph& fine, std::int64_t max_vert_weight_q,
                        util::Rng& rng);

}  // namespace p3d::partition
