#include "partition/partitioner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/coarsen.h"
#include "runtime/parallel.h"
#include "runtime/stream.h"
#include "runtime/thread_pool.h"
#include "util/log.h"
#include "util/rng.h"

namespace p3d::partition {
namespace {

struct Bounds {
  std::int64_t min0 = 0;
  std::int64_t max0 = 0;
};

Bounds BalanceBounds(const Hypergraph& hg, double target, double tolerance) {
  const double total = static_cast<double>(hg.TotalVertWeightQ());
  Bounds b;
  b.min0 = static_cast<std::int64_t>(std::floor((target - tolerance) * total));
  b.max0 = static_cast<std::int64_t>(std::ceil((target + tolerance) * total));
  b.min0 = std::max<std::int64_t>(b.min0, 0);
  b.max0 = std::min<std::int64_t>(b.max0, hg.TotalVertWeightQ());
  return b;
}

/// Random greedy growth: BFS from a random free seed, accreting vertices into
/// part 0 until it reaches half the weight; everything else goes to part 1.
/// Fixed vertices keep their side and seed the growth of their part.
std::vector<std::int8_t> GreedyGrowInitial(const Hypergraph& hg,
                                           double target_fraction,
                                           util::Rng& rng) {
  const std::int32_t nv = hg.NumVerts();
  std::vector<std::int8_t> side(static_cast<std::size_t>(nv), 1);
  std::vector<bool> visited(static_cast<std::size_t>(nv), false);
  std::int64_t w0 = 0;
  const std::int64_t target = static_cast<std::int64_t>(
      target_fraction * static_cast<double>(hg.TotalVertWeightQ()));

  std::deque<std::int32_t> frontier;
  for (std::int32_t v = 0; v < nv; ++v) {
    if (hg.Fixed(v) == FixedSide::kPart0) {
      side[static_cast<std::size_t>(v)] = 0;
      visited[static_cast<std::size_t>(v)] = true;
      w0 += hg.VertWeightQ(v);
      frontier.push_back(v);
    } else if (hg.Fixed(v) == FixedSide::kPart1) {
      visited[static_cast<std::size_t>(v)] = true;  // never joins part 0
    }
  }
  if (frontier.empty() && nv > 0) {
    // Random free seed.
    for (int tries = 0; tries < 32; ++tries) {
      const auto v = static_cast<std::int32_t>(
          rng.NextBounded(static_cast<std::uint64_t>(nv)));
      if (!visited[static_cast<std::size_t>(v)]) {
        frontier.push_back(v);
        visited[static_cast<std::size_t>(v)] = true;
        side[static_cast<std::size_t>(v)] = 0;
        w0 += hg.VertWeightQ(v);
        break;
      }
    }
  }
  while (!frontier.empty() && w0 < target) {
    const std::int32_t v = frontier.front();
    frontier.pop_front();
    for (const std::int32_t n : hg.VertNets(v)) {
      for (const std::int32_t u : hg.NetVerts(n)) {
        if (visited[static_cast<std::size_t>(u)]) continue;
        visited[static_cast<std::size_t>(u)] = true;
        side[static_cast<std::size_t>(u)] = 0;
        w0 += hg.VertWeightQ(u);
        frontier.push_back(u);
        if (w0 >= target) return side;
      }
    }
  }
  // Disconnected leftovers: random fill toward the target.
  if (w0 < target) {
    std::vector<std::int32_t> order(static_cast<std::size_t>(nv));
    for (std::int32_t v = 0; v < nv; ++v) order[static_cast<std::size_t>(v)] = v;
    rng.Shuffle(order);
    for (const std::int32_t v : order) {
      if (w0 >= target) break;
      if (visited[static_cast<std::size_t>(v)]) continue;
      side[static_cast<std::size_t>(v)] = 0;
      w0 += hg.VertWeightQ(v);
    }
  }
  return side;
}

/// Deterministic last-resort balance repair: while part 0 is outside its
/// bounds, greedily move the free vertex with the best cut-gain-to-weight
/// ratio from the heavy side. FM almost always leaves a feasible partition;
/// this guarantees it whenever the weight granularity allows.
void RepairBalance(const Hypergraph& hg, std::vector<std::int8_t>* side_ptr,
                   std::int64_t min0, std::int64_t max0) {
  auto& side = *side_ptr;
  std::int64_t w0 = hg.PartWeightQ(side, 0);
  int guard = hg.NumVerts() + 1;
  while ((w0 < min0 || w0 > max0) && guard-- > 0) {
    const int from = w0 > max0 ? 0 : 1;
    std::int32_t best = -1;
    double best_score = 0.0;
    for (std::int32_t v = 0; v < hg.NumVerts(); ++v) {
      if (side[static_cast<std::size_t>(v)] != from) continue;
      if (hg.Fixed(v) != FixedSide::kFree) continue;
      const std::int64_t wv = hg.VertWeightQ(v);
      if (wv == 0) continue;
      // Overshoot check: moving must not flip infeasibility to the other side.
      const std::int64_t w0_after = from == 0 ? w0 - wv : w0 + wv;
      if (from == 0 && w0_after < min0 && min0 - w0_after > w0 - max0) continue;
      if (from == 1 && w0_after > max0 && w0_after - max0 > min0 - w0) continue;
      // Cut delta of moving v (positive = cut increases).
      double delta = 0.0;
      for (const std::int32_t n : hg.VertNets(v)) {
        int same = 0, other = 0;
        for (const std::int32_t u : hg.NetVerts(n)) {
          if (u == v) continue;
          (side[static_cast<std::size_t>(u)] == from ? same : other) += 1;
        }
        if (same == 0 && other > 0) delta -= hg.NetWeight(n);  // uncuts
        if (other == 0 && same > 0) delta += hg.NetWeight(n);  // cuts
      }
      const double score = -delta / static_cast<double>(wv);
      if (best < 0 || score > best_score) {
        best = v;
        best_score = score;
      }
    }
    if (best < 0) break;  // nothing movable
    side[static_cast<std::size_t>(best)] =
        static_cast<std::int8_t>(1 - from);
    w0 += from == 0 ? -hg.VertWeightQ(best) : hg.VertWeightQ(best);
  }
}

PartitionResult RunOneStart(const Hypergraph& hg,
                            const PartitionOptions& options, util::Rng rng) {
  // One multilevel V-cycle. FM statistics accumulate locally and post to the
  // metrics registry once at the end: integer counters are commutative, so
  // recording from parallel starts in any order stays deterministic.
  obs::TraceScope trace_vcycle("partition.vcycle");
  long long fm_calls = 0;
  long long fm_passes = 0;
  long long fm_gain_q = 0;
  const auto tally_fm = [&](const FmStats& fs) {
    ++fm_calls;
    fm_passes += fs.passes;
    fm_gain_q += fs.initial_cut_q - fs.final_cut_q;
  };

  // --- coarsen -------------------------------------------------------------
  std::vector<CoarseLevel> levels;
  const Hypergraph* cur = &hg;
  // Cluster-weight cap ~1/coarsen_to of the total keeps even tight balance
  // targets reachable at the coarsest level.
  const std::int64_t max_cluster_weight = std::max<std::int64_t>(
      1, hg.TotalVertWeightQ() / std::max(options.coarsen_to, 1));
  while (cur->NumVerts() > options.coarsen_to) {
    CoarseLevel next = CoarsenOnce(*cur, max_cluster_weight, rng);
    const double ratio = static_cast<double>(next.hg.NumVerts()) /
                         static_cast<double>(cur->NumVerts());
    if (ratio > 0.95) break;  // stalled (e.g. star topology)
    levels.push_back(std::move(next));
    cur = &levels.back().hg;
  }

  // --- initial partition at the coarsest level -----------------------------
  const Hypergraph& coarsest = *cur;
  const Bounds cb =
      BalanceBounds(coarsest, options.target_fraction, options.tolerance);
  FmOptions fm;
  fm.min_part0_weight_q = cb.min0;
  fm.max_part0_weight_q = cb.max0;
  fm.max_passes = options.fm_passes;
  fm.early_exit_moves = options.fm_early_exit_moves;

  std::vector<std::int8_t> best_side;
  double best_cut = 0.0;
  bool best_feasible = false;
  for (int t = 0; t < std::max(options.initial_tries, 1); ++t) {
    std::vector<std::int8_t> side =
        GreedyGrowInitial(coarsest, options.target_fraction, rng);
    tally_fm(RefineFm(coarsest, &side, fm, rng));
    const double cut = coarsest.CutCost(side);
    const std::int64_t w0 = coarsest.PartWeightQ(side, 0);
    const bool feas = w0 >= cb.min0 && w0 <= cb.max0;
    const bool better = best_side.empty() || (feas && !best_feasible) ||
                        (feas == best_feasible && cut < best_cut);
    if (better) {
      best_side = std::move(side);
      best_cut = cut;
      best_feasible = feas;
    }
  }

  // --- uncoarsen + refine ----------------------------------------------------
  std::vector<std::int8_t> side = std::move(best_side);
  for (std::size_t li = levels.size(); li-- > 0;) {
    const Hypergraph& fine = li == 0 ? hg : levels[li - 1].hg;
    const auto& map = levels[li].fine_to_coarse;
    std::vector<std::int8_t> fine_side(static_cast<std::size_t>(fine.NumVerts()));
    for (std::int32_t v = 0; v < fine.NumVerts(); ++v) {
      fine_side[static_cast<std::size_t>(v)] =
          side[static_cast<std::size_t>(map[static_cast<std::size_t>(v)])];
    }
    const Bounds fb =
        BalanceBounds(fine, options.target_fraction, options.tolerance);
    FmOptions ffm = fm;
    ffm.min_part0_weight_q = fb.min0;
    ffm.max_part0_weight_q = fb.max0;
    tally_fm(RefineFm(fine, &fine_side, ffm, rng));
    side = std::move(fine_side);
  }
  if (levels.empty()) {
    // No coarsening happened; refine directly on the input graph.
    const Bounds fb =
        BalanceBounds(hg, options.target_fraction, options.tolerance);
    FmOptions ffm = fm;
    ffm.min_part0_weight_q = fb.min0;
    ffm.max_part0_weight_q = fb.max0;
    tally_fm(RefineFm(hg, &side, ffm, rng));
  }

  const Bounds b =
      BalanceBounds(hg, options.target_fraction, options.tolerance);
  {
    const std::int64_t w0_now = hg.PartWeightQ(side, 0);
    if (w0_now < b.min0 || w0_now > b.max0) {
      // FM missed the balance window (tight z-cut tolerances can defeat it);
      // repair deterministically, then let FM re-optimize inside the window.
      RepairBalance(hg, &side, b.min0, b.max0);
      obs::MetricAdd("partition/balance_repairs", 1);
      FmOptions ffm = fm;
      ffm.min_part0_weight_q = b.min0;
      ffm.max_part0_weight_q = b.max0;
      tally_fm(RefineFm(hg, &side, ffm, rng));
    }
  }

  obs::MetricAdd("fm/refinements", fm_calls);
  obs::MetricAdd("fm/passes", fm_passes);
  obs::MetricAdd("fm/gain_q", fm_gain_q);
  obs::MetricObserve("partition/coarsen_levels",
                     static_cast<std::int64_t>(levels.size()));

  PartitionResult result;
  result.cut_cost = hg.CutCost(side);
  const std::int64_t w0 = hg.PartWeightQ(side, 0);
  result.feasible = w0 >= b.min0 && w0 <= b.max0;
  result.part0_fraction =
      hg.TotalVertWeightQ() > 0
          ? static_cast<double>(w0) / static_cast<double>(hg.TotalVertWeightQ())
          : 0.5;
  result.side = std::move(side);
  return result;
}

}  // namespace

PartitionResult Bipartition(const Hypergraph& hg,
                            const PartitionOptions& options) {
  assert(hg.finalized());
  obs::TraceScope trace_bipartition("partition.bipartition");

  // Independent multilevel starts, each on its own derived RNG stream, run
  // as one parallel batch. Start s writes only results[s], so the batch is
  // race-free and its outcome independent of scheduling.
  const int num_starts = std::max(options.num_starts, 1);
  std::vector<PartitionResult> results(static_cast<std::size_t>(num_starts));
  runtime::ThreadPool* pool = runtime::SharedPool(options.threads);
  runtime::ParallelFor(pool, 0, num_starts, /*grain=*/1, [&](std::int64_t s) {
    results[static_cast<std::size_t>(s)] = RunOneStart(
        hg, options,
        runtime::DeriveStream(options.seed, static_cast<std::uint64_t>(s)));
  });

  // Deterministic best pick: feasibility first, then cut cost, ties broken
  // by the lowest start index (the strict comparison scans in start order).
  PartitionResult best;
  for (PartitionResult& r : results) {
    const bool better = best.side.empty() ||
                        (r.feasible && !best.feasible) ||
                        (r.feasible == best.feasible && r.cut_cost < best.cut_cost);
    if (better) best = std::move(r);
  }
  // Fixed vertices must end on their side regardless of refinement paths.
  for (std::int32_t v = 0; v < hg.NumVerts(); ++v) {
    if (hg.Fixed(v) == FixedSide::kPart0) best.side[static_cast<std::size_t>(v)] = 0;
    if (hg.Fixed(v) == FixedSide::kPart1) best.side[static_cast<std::size_t>(v)] = 1;
  }
  // Bookkeeping cross-check: a result claiming feasibility must still be
  // inside the balance window when the weights are resummed from scratch
  // (the fixed-vertex fixup above must not have changed the split).
  if (best.feasible) {
    const BalanceAudit audit = AuditBalance(hg, best.side,
                                            options.target_fraction,
                                            options.tolerance);
    if (!audit.within) {
      util::LogWarn(
          "partition: feasible result fails balance re-verification "
          "(w0 %lld outside [%lld, %lld])",
          static_cast<long long>(audit.weight0),
          static_cast<long long>(audit.min0),
          static_cast<long long>(audit.max0));
      best.feasible = false;
    }
  }
  obs::MetricAdd("partition/bipartitions", 1);
  if (!best.feasible) obs::MetricAdd("partition/infeasible", 1);
  return best;
}

BalanceAudit AuditBalance(const Hypergraph& hg,
                          const std::vector<std::int8_t>& side,
                          double target_fraction, double tolerance) {
  BalanceAudit audit;
  // Resummed independently of Hypergraph::PartWeightQ so a bug in the
  // incremental weight bookkeeping cannot hide here.
  for (std::int32_t v = 0; v < hg.NumVerts(); ++v) {
    if (side[static_cast<std::size_t>(v)] == 0) audit.weight0 += hg.VertWeightQ(v);
  }
  const Bounds b = BalanceBounds(hg, target_fraction, tolerance);
  audit.min0 = b.min0;
  audit.max0 = b.max0;
  audit.fraction =
      hg.TotalVertWeightQ() > 0
          ? static_cast<double>(audit.weight0) /
                static_cast<double>(hg.TotalVertWeightQ())
          : 0.5;
  audit.within = audit.weight0 >= audit.min0 && audit.weight0 <= audit.max0;
  return audit;
}

}  // namespace p3d::partition
