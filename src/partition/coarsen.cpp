#include "partition/coarsen.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace p3d::partition {
namespace {

/// Hash of a sorted vertex list, used to merge parallel coarse nets.
struct VecHash {
  std::size_t operator()(const std::vector<std::int32_t>& v) const {
    std::size_t h = 0x9e3779b97f4a7c15ULL ^ v.size();
    for (const std::int32_t x : v) {
      h ^= static_cast<std::size_t>(x) + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace

CoarseLevel CoarsenOnce(const Hypergraph& fine, std::int64_t max_vert_weight_q,
                        util::Rng& rng) {
  const std::int32_t nv = fine.NumVerts();
  std::vector<std::int32_t> match(static_cast<std::size_t>(nv), -1);

  std::vector<std::int32_t> order(static_cast<std::size_t>(nv));
  for (std::int32_t v = 0; v < nv; ++v) order[static_cast<std::size_t>(v)] = v;
  rng.Shuffle(order);

  // Scratch for connectivity scores of candidate mates.
  std::vector<double> score(static_cast<std::size_t>(nv), 0.0);
  std::vector<std::int32_t> touched;

  for (const std::int32_t v : order) {
    if (match[static_cast<std::size_t>(v)] >= 0) continue;
    if (fine.Fixed(v) != FixedSide::kFree) {
      match[static_cast<std::size_t>(v)] = v;  // fixed: singleton
      continue;
    }
    touched.clear();
    for (const std::int32_t n : fine.VertNets(v)) {
      const auto verts = fine.NetVerts(n);
      if (verts.size() < 2 || verts.size() > 64) continue;  // skip huge nets
      const double w =
          static_cast<double>(fine.NetWeightQ(n)) / (static_cast<double>(verts.size()) - 1.0);
      for (const std::int32_t u : verts) {
        if (u == v) continue;
        if (match[static_cast<std::size_t>(u)] >= 0) continue;
        if (fine.Fixed(u) != FixedSide::kFree) continue;
        if (fine.VertWeightQ(v) + fine.VertWeightQ(u) > max_vert_weight_q) continue;
        if (score[static_cast<std::size_t>(u)] == 0.0) touched.push_back(u);
        score[static_cast<std::size_t>(u)] += w;
      }
    }
    std::int32_t best = -1;
    double best_score = 0.0;
    for (const std::int32_t u : touched) {
      if (score[static_cast<std::size_t>(u)] > best_score) {
        best_score = score[static_cast<std::size_t>(u)];
        best = u;
      }
      score[static_cast<std::size_t>(u)] = 0.0;
    }
    if (best >= 0) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;  // singleton
    }
  }

  // Assign coarse ids (the lower-id endpoint of each match owns the pair).
  CoarseLevel level;
  level.fine_to_coarse.assign(static_cast<std::size_t>(nv), -1);
  std::int32_t nc = 0;
  for (std::int32_t v = 0; v < nv; ++v) {
    const std::int32_t m = match[static_cast<std::size_t>(v)];
    if (m >= v) {  // owner
      level.fine_to_coarse[static_cast<std::size_t>(v)] = nc;
      if (m != v) level.fine_to_coarse[static_cast<std::size_t>(m)] = nc;
      ++nc;
    }
  }

  // Coarse vertices.
  std::vector<double> cw(static_cast<std::size_t>(nc), 0.0);
  std::vector<FixedSide> cfix(static_cast<std::size_t>(nc), FixedSide::kFree);
  for (std::int32_t v = 0; v < nv; ++v) {
    const std::int32_t c = level.fine_to_coarse[static_cast<std::size_t>(v)];
    cw[static_cast<std::size_t>(c)] += fine.VertWeight(v);
    if (fine.Fixed(v) != FixedSide::kFree) {
      cfix[static_cast<std::size_t>(c)] = fine.Fixed(v);
    }
  }
  for (std::int32_t c = 0; c < nc; ++c) {
    level.hg.AddVertex(cw[static_cast<std::size_t>(c)], cfix[static_cast<std::size_t>(c)]);
  }

  // Coarse nets: remap, drop degenerate, merge parallel.
  std::unordered_map<std::vector<std::int32_t>, std::int32_t, VecHash> seen;
  std::vector<std::int32_t> mapped;
  std::vector<double> merged_weight;
  std::vector<std::vector<std::int32_t>> merged_verts;
  for (std::int32_t n = 0; n < fine.NumNets(); ++n) {
    mapped.clear();
    for (const std::int32_t u : fine.NetVerts(n)) {
      mapped.push_back(level.fine_to_coarse[static_cast<std::size_t>(u)]);
    }
    std::sort(mapped.begin(), mapped.end());
    mapped.erase(std::unique(mapped.begin(), mapped.end()), mapped.end());
    if (mapped.size() < 2) continue;  // swallowed by a cluster
    const auto [it, inserted] =
        seen.emplace(mapped, static_cast<std::int32_t>(merged_weight.size()));
    if (inserted) {
      merged_weight.push_back(fine.NetWeight(n));
      merged_verts.push_back(mapped);
    } else {
      merged_weight[static_cast<std::size_t>(it->second)] += fine.NetWeight(n);
    }
  }
  for (std::size_t i = 0; i < merged_weight.size(); ++i) {
    level.hg.AddNet(merged_weight[i], merged_verts[i]);
  }
  level.hg.Finalize();
  return level;
}

}  // namespace p3d::partition
