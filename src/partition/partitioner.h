// Multilevel min-cut bipartitioner — the drop-in replacement for hMetis [15]
// used by the placer's recursive bisection (paper Section 3).
//
// Pipeline per start: coarsen until the graph is small, build several random
// greedy initial partitions at the coarsest level, refine with FM, then
// uncoarsen with FM refinement at every level. Multiple independent starts
// (the knob the paper's Section 7 runtime/quality ablation turns) keep the
// best feasible result.
#pragma once

#include <cstdint>
#include <vector>

#include "partition/fm.h"
#include "partition/hypergraph.h"

namespace p3d::partition {

struct PartitionOptions {
  // Desired weight fraction of part 0 (0.5 = balanced bisection; the placer
  // uses m/L when splitting an L-layer region into m + (L-m) layers).
  double target_fraction = 0.5;
  // Allowed deviation of part 0's weight fraction from the target; e.g. 0.1
  // allows [target-0.1, target+0.1]. Derived from region whitespace.
  double tolerance = 0.1;
  // Independent multilevel runs; best feasible cut wins.
  int num_starts = 1;
  // Random greedy initial partitions evaluated at the coarsest level.
  int initial_tries = 6;
  // Coarsening stops at this many vertices (or when progress stalls).
  std::int32_t coarsen_to = 64;
  int fm_passes = 6;
  int fm_early_exit_moves = 300;
  std::uint64_t seed = 1;
  // Parallel runtime width for the independent starts (0 = all hardware
  // threads). Each start draws a seed derived from (seed, start index) and
  // the best result is tie-broken on start index, so the outcome is
  // identical for any thread count.
  int threads = 1;
};

struct PartitionResult {
  std::vector<std::int8_t> side;  // 0/1 per vertex
  double cut_cost = 0.0;          // real-weight cut
  double part0_fraction = 0.5;    // of total quantized weight
  bool feasible = false;
};

/// Bipartitions a finalized hypergraph. Fixed vertices keep their side.
PartitionResult Bipartition(const Hypergraph& hg,
                            const PartitionOptions& options);

/// Independent re-verification of a bipartition's balance, used by the audit
/// subsystem and by Bipartition itself as a bookkeeping cross-check: the
/// part-0 weight is resummed from scratch and compared against the same
/// quantized bounds the FM refiner enforced.
struct BalanceAudit {
  double fraction = 0.0;      // recomputed part-0 weight fraction
  std::int64_t weight0 = 0;   // recomputed part-0 quantized weight
  std::int64_t min0 = 0;      // inclusive feasibility bounds
  std::int64_t max0 = 0;
  bool within = false;        // weight0 in [min0, max0]
};
BalanceAudit AuditBalance(const Hypergraph& hg,
                          const std::vector<std::int8_t>& side,
                          double target_fraction, double tolerance);

}  // namespace p3d::partition
