// Hypergraph representation for min-cut bipartitioning.
//
// This is the substrate that replaces hMetis [15] in the paper's flow. The
// placer builds one hypergraph per bisected region: vertices are the region's
// cells (plus zero-weight fixed terminals from terminal propagation), nets
// are the induced hypernets with direction-dependent weights.
//
// Weights are quantized to integers on construction: the FM refiner uses
// gain-bucket arrays, which require integer gains (as in the original FM and
// hMetis implementations). Quantization resolution is 1/64 of the smallest
// positive net weight, capped so gains stay small; partitioning quality is
// insensitive to this rounding.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace p3d::partition {

/// Side assignment of a vertex: free, or fixed to a part.
enum class FixedSide : std::int8_t {
  kFree = -1,
  kPart0 = 0,
  kPart1 = 1,
};

class Hypergraph {
 public:
  Hypergraph() = default;

  // ----- construction ----------------------------------------------------

  /// Adds a vertex with a real-valued weight (cell area). Returns its id.
  std::int32_t AddVertex(double weight, FixedSide fixed = FixedSide::kFree);

  /// Adds a net over the given vertex ids with a real-valued weight.
  /// Duplicate pins within a net are removed; single-pin nets are kept but
  /// never contribute to the cut.
  std::int32_t AddNet(double weight, std::span<const std::int32_t> verts);

  /// Quantizes weights and builds the vertex->net adjacency. Must be called
  /// before any query below.
  void Finalize();

  // ----- queries --------------------------------------------------------

  std::int32_t NumVerts() const { return static_cast<std::int32_t>(vert_weight_.size()); }
  std::int32_t NumNets() const { return static_cast<std::int32_t>(net_weight_.size()); }

  std::span<const std::int32_t> NetVerts(std::int32_t n) const {
    return {net_verts_.data() + net_ptr_[static_cast<std::size_t>(n)],
            static_cast<std::size_t>(net_ptr_[static_cast<std::size_t>(n) + 1] -
                                     net_ptr_[static_cast<std::size_t>(n)])};
  }
  std::span<const std::int32_t> VertNets(std::int32_t v) const {
    return {vert_nets_.data() + vert_ptr_[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(vert_ptr_[static_cast<std::size_t>(v) + 1] -
                                     vert_ptr_[static_cast<std::size_t>(v)])};
  }

  /// Quantized (integer) weights used by all partitioning math.
  std::int64_t VertWeightQ(std::int32_t v) const { return vert_weight_q_[static_cast<std::size_t>(v)]; }
  std::int32_t NetWeightQ(std::int32_t n) const { return net_weight_q_[static_cast<std::size_t>(n)]; }

  /// Original real weights (for reporting).
  double VertWeight(std::int32_t v) const { return vert_weight_[static_cast<std::size_t>(v)]; }
  double NetWeight(std::int32_t n) const { return net_weight_[static_cast<std::size_t>(n)]; }

  FixedSide Fixed(std::int32_t v) const { return fixed_[static_cast<std::size_t>(v)]; }

  std::int64_t TotalVertWeightQ() const { return total_vert_weight_q_; }

  /// Sum over a partition assignment of the quantized weights on part 1.
  /// `side` holds 0/1 per vertex.
  std::int64_t PartWeightQ(const std::vector<std::int8_t>& side, int part) const;

  /// Weighted cut of a partition (sum of real net weights of cut nets).
  double CutCost(const std::vector<std::int8_t>& side) const;
  /// Quantized cut used internally by FM.
  std::int64_t CutCostQ(const std::vector<std::int8_t>& side) const;

  bool finalized() const { return finalized_; }

 private:
  std::vector<double> vert_weight_;
  std::vector<FixedSide> fixed_;
  std::vector<double> net_weight_;
  std::vector<std::int32_t> net_ptr_{0};
  std::vector<std::int32_t> net_verts_;

  // Built by Finalize():
  std::vector<std::int32_t> vert_ptr_;
  std::vector<std::int32_t> vert_nets_;
  std::vector<std::int64_t> vert_weight_q_;
  std::vector<std::int32_t> net_weight_q_;
  std::int64_t total_vert_weight_q_ = 0;
  bool finalized_ = false;
};

}  // namespace p3d::partition
