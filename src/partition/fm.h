// Fiduccia–Mattheyses bipartition refinement with gain buckets.
//
// Operates on quantized weights so gains are integers (bucket-indexable).
// Balance is expressed as an allowed interval for part 0's quantized weight;
// the refiner also repairs infeasible starting partitions by preferring
// balance-restoring moves while infeasible.
#pragma once

#include <cstdint>
#include <vector>

#include "partition/hypergraph.h"
#include "util/rng.h"

namespace p3d::partition {

struct FmOptions {
  std::int64_t min_part0_weight_q = 0;  // inclusive lower bound on part 0
  std::int64_t max_part0_weight_q = 0;  // inclusive upper bound on part 0
  int max_passes = 8;
  // A pass aborts after this many consecutive non-improving moves
  // (classic early-exit heuristic; <=0 disables).
  int early_exit_moves = 300;
};

struct FmStats {
  int passes = 0;
  std::int64_t initial_cut_q = 0;
  std::int64_t final_cut_q = 0;
  bool feasible = false;  // final balance within bounds
};

/// Refines `side` (0/1 per vertex; fixed vertices must already match their
/// fixed side) in place. Returns pass statistics.
FmStats RefineFm(const Hypergraph& hg, std::vector<std::int8_t>* side,
                 const FmOptions& options, util::Rng& rng);

}  // namespace p3d::partition
