#include "util/status.h"

namespace p3d::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kParseError: return "parse_error";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kCancelled: return "cancelled";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}
Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}

}  // namespace p3d::util
