// Minimal leveled logger for the placer3d library.
//
// All library output goes through this logger so that examples, tests, and
// benchmark harnesses can silence or redirect it. The logger is deliberately
// tiny: a global level, printf-style formatting, and a wall-clock prefix.
#pragma once

#include <cstdarg>
#include <string>

namespace p3d::util {

enum class LogLevel : int {
  kSilent = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
};

/// Sets the global log threshold; messages above this level are dropped.
/// The initial threshold is kInfo, overridable by the P3D_LOG_LEVEL
/// environment variable (read once, before the first log call): a name
/// ("silent", "error", "warn", "info", "debug", case-insensitive) or the
/// numeric level 0-4. SetLogLevel always wins over the environment.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a P3D_LOG_LEVEL-style spec (name or digit). Returns false (and
/// leaves `out` untouched) on anything unrecognized.
bool ParseLogLevel(const char* text, LogLevel* out);

/// printf-style logging. Thread-safe: the level check is atomic and a mutex
/// around formatting/emission keeps lines from interleaving, so the parallel
/// runtime's workers (src/runtime) may log freely.
void Logf(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

void LogError(const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;
void LogWarn(const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;
void LogInfo(const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;
void LogDebug(const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

/// RAII guard that restores the previous log level on destruction. Used by
/// tests and benches that want a quiet library.
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : previous_(GetLogLevel()) {
    SetLogLevel(level);
  }
  ~ScopedLogLevel() { SetLogLevel(previous_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel previous_;
};

}  // namespace p3d::util
