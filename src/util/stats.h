// Small descriptive-statistics helpers used by benches and reports.
#pragma once

#include <cstddef>
#include <vector>

namespace p3d::util {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
};

/// Computes min/max/mean/stddev of a sample. Empty input yields a
/// zero-initialized summary.
Summary Summarize(const std::vector<double>& values);

/// Linear least-squares fit y = a * x^b (power law), computed in log space.
/// Mirrors the paper's Figure 10 runtime fit (t = 2e-4 * n^1.19).
/// All inputs must be strictly positive; returns {a, b}.
struct PowerFit {
  double a = 0.0;
  double b = 0.0;
};
PowerFit FitPowerLaw(const std::vector<double>& x, const std::vector<double>& y);

/// Geometric mean; inputs must be strictly positive.
double GeometricMean(const std::vector<double>& values);

}  // namespace p3d::util
