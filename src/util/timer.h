// Wall-clock timing for the runtime experiments (paper Figure 10).
//
// Policy: every elapsed-time measurement in this codebase — Timer, the log
// prefix, the trace sink (src/obs) — uses std::chrono::steady_clock, which
// is monotonic and immune to NTP/system-clock adjustments. system_clock and
// high_resolution_clock must not be introduced for durations.
#pragma once

#include <chrono>
#include <cstdint>

namespace p3d::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed wall-clock seconds since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed nanoseconds, for consumers that cannot afford double rounding.
  std::int64_t Nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace p3d::util
