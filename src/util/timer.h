// Wall-clock timing for the runtime experiments (paper Figure 10).
#pragma once

#include <chrono>

namespace p3d::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed wall-clock seconds since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace p3d::util
