// Deterministic pseudo-random number generation.
//
// Every stochastic component of the placer (synthetic benchmark generation,
// partitioner random starts, switching activities) draws from this engine so
// that runs are exactly reproducible from a single seed — a requirement for
// regression-testing placement quality.
#pragma once

#include <cstdint>
#include <limits>

namespace p3d::util {

/// SplitMix64: tiny, fast, high-quality 64-bit generator. Used both directly
/// and to seed per-component streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  std::uint64_t NextU64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int NextInt(int lo, int hi) {
    return lo + static_cast<int>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  bool NextBool() { return (NextU64() & 1u) != 0; }

  /// Forks an independent stream; children of distinct forks never collide in
  /// practice because SplitMix64 output is used as the child seed.
  Rng Fork() { return Rng(NextU64()); }

  /// Fisher–Yates shuffle over a random-access container.
  template <typename Container>
  void Shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBounded(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  std::uint64_t state_;
};

}  // namespace p3d::util
