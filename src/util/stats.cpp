#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace p3d::util {

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(s.count));
  return s;
}

PowerFit FitPowerLaw(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  PowerFit fit;
  const std::size_t n = x.size();
  if (n < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    assert(x[i] > 0.0 && y[i] > 0.0);
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.b = (dn * sxy - sx * sy) / denom;
  fit.a = std::exp((sy - fit.b * sx) / dn);
  return fit;
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) {
    assert(v > 0.0);
    acc += std::log(v);
  }
  return std::exp(acc / static_cast<double>(values.size()));
}

}  // namespace p3d::util
