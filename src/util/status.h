// Status / StatusOr<T> — the library's error-returning currency.
//
// Public entry points (Placer3D::Create/Run, the Bookshelf readers,
// Chip::Build) report failures by value instead of bool-and-log or assert:
// a Status carries a machine-checkable code plus a human-readable message,
// and StatusOr<T> couples one with the value it failed (or succeeded) to
// produce. The CLI maps codes to its exit-code contract; library callers
// branch on ok() / code() and never lose the diagnostic.
//
// Deliberately dependency-free (no exceptions required, no abseil): a code,
// a string, and a tagged union. Error construction goes through the named
// helpers (InvalidArgumentError, ...) so call sites read like prose.
#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <utility>

namespace p3d::util {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   // caller passed a value outside the contract
  kFailedPrecondition = 2,  // object state does not admit the operation
  kNotFound = 3,          // a named resource (file, circuit) does not exist
  kIoError = 4,           // the OS refused a read/write
  kParseError = 5,        // a file exists but its contents are malformed
  kInternal = 6,          // invariant violation inside the library
  kCancelled = 7,         // the caller requested cancellation and it won
};

/// Human-readable name of a code ("ok", "invalid_argument", ...).
const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk || message_.empty());
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>".
  std::string ToString() const;

  /// Aborts with the diagnostic unless ok(). For call sites whose errors are
  /// genuinely unrecoverable (tests, examples); library code propagates.
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "p3d: unchecked non-OK status: %s\n",
                   ToString().c_str());
      std::abort();
    }
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status FailedPreconditionError(std::string message);
Status NotFoundError(std::string message);
Status IoError(std::string message);
Status ParseError(std::string message);
Status InternalError(std::string message);
Status CancelledError(std::string message);

/// True iff `status` carries kCancelled. Cancellation is the one code a
/// caller routinely branches on (a cancelled job is not an error), hence the
/// dedicated predicate.
inline bool IsCancelled(const Status& status) {
  return status.code() == StatusCode::kCancelled;
}

/// A Status or a T. Construction from T (implicitly) or from a non-OK
/// Status; value access asserts ok() in the CheckOk sense, so `*result`
/// reads cleanly at call sites that have already tested or cannot recover.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(const T& value) : has_value_(true) { new (&value_) T(value); }
  StatusOr(T&& value) : has_value_(true) { new (&value_) T(std::move(value)); }
  StatusOr(Status status) : has_value_(false), status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr(Status) requires a non-OK status");
    if (status_.ok()) {
      status_ = InternalError("StatusOr constructed from OK status");
    }
  }

  StatusOr(const StatusOr& other) : has_value_(other.has_value_),
                                    status_(other.status_) {
    if (has_value_) new (&value_) T(other.value_);
  }
  StatusOr(StatusOr&& other) noexcept
      : has_value_(other.has_value_), status_(std::move(other.status_)) {
    if (has_value_) new (&value_) T(std::move(other.value_));
  }
  StatusOr& operator=(const StatusOr& other) {
    if (this != &other) {
      Destroy();
      has_value_ = other.has_value_;
      status_ = other.status_;
      if (has_value_) new (&value_) T(other.value_);
    }
    return *this;
  }
  StatusOr& operator=(StatusOr&& other) noexcept {
    if (this != &other) {
      Destroy();
      has_value_ = other.has_value_;
      status_ = std::move(other.status_);
      if (has_value_) new (&value_) T(std::move(other.value_));
    }
    return *this;
  }
  ~StatusOr() { Destroy(); }

  bool ok() const { return has_value_; }
  /// OK when a value is held, the construction error otherwise.
  const Status& status() const { return status_; }

  /// Value access; aborts with the status diagnostic when !ok().
  T& value() & { EnsureOk(); return value_; }
  const T& value() const& { EnsureOk(); return value_; }
  T&& value() && { EnsureOk(); return std::move(value_); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// The held value, or `fallback` when !ok().
  T value_or(T fallback) const& { return has_value_ ? value_ : fallback; }

 private:
  void EnsureOk() const {
    if (!has_value_) {
      std::fprintf(stderr, "p3d: StatusOr value access on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }
  void Destroy() {
    if (has_value_) value_.~T();
    has_value_ = false;
  }

  bool has_value_ = false;
  union {
    T value_;
  };
  Status status_;
};

}  // namespace p3d::util
