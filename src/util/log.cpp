#include "util/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace p3d::util {
namespace {

int InitialLevel() {
  LogLevel level = LogLevel::kInfo;
  if (const char* env = std::getenv("P3D_LOG_LEVEL")) {
    ParseLogLevel(env, &level);  // unrecognized specs keep the default
  }
  return static_cast<int>(level);
}

std::atomic<int> g_level{InitialLevel()};

// Serializes formatting + emission so concurrent workers never interleave
// partial lines. Level filtering stays lock-free on the atomic above.
std::mutex g_emit_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kDebug:
      return "DEBUG";
    default:
      return "     ";
  }
}

void VLogf(LogLevel level, const char* fmt, va_list args) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) return;
  static const auto start = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%8.2fs %s] ", elapsed, LevelTag(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace

bool ParseLogLevel(const char* text, LogLevel* out) {
  if (text == nullptr || *text == '\0') return false;
  if (text[0] >= '0' && text[0] <= '4' && text[1] == '\0') {
    *out = static_cast<LogLevel>(text[0] - '0');
    return true;
  }
  std::string lower;
  for (const char* p = text; *p != '\0'; ++p) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "silent") {
    *out = LogLevel::kSilent;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarn;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else {
    return false;
  }
  return true;
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}
LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Logf(LogLevel level, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  VLogf(level, fmt, args);
  va_end(args);
}

#define P3D_DEFINE_LOG_FN(Name, Level)       \
  void Name(const char* fmt, ...) {          \
    va_list args;                            \
    va_start(args, fmt);                     \
    VLogf(Level, fmt, args);                 \
    va_end(args);                            \
  }

P3D_DEFINE_LOG_FN(LogError, LogLevel::kError)
P3D_DEFINE_LOG_FN(LogWarn, LogLevel::kWarn)
P3D_DEFINE_LOG_FN(LogInfo, LogLevel::kInfo)
P3D_DEFINE_LOG_FN(LogDebug, LogLevel::kDebug)

#undef P3D_DEFINE_LOG_FN

}  // namespace p3d::util
