#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace p3d::util {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

// Serializes formatting + emission so concurrent workers never interleave
// partial lines. Level filtering stays lock-free on the atomic above.
std::mutex g_emit_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kDebug:
      return "DEBUG";
    default:
      return "     ";
  }
}

void VLogf(LogLevel level, const char* fmt, va_list args) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) return;
  static const auto start = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%8.2fs %s] ", elapsed, LevelTag(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}
LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Logf(LogLevel level, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  VLogf(level, fmt, args);
  va_end(args);
}

#define P3D_DEFINE_LOG_FN(Name, Level)       \
  void Name(const char* fmt, ...) {          \
    va_list args;                            \
    va_start(args, fmt);                     \
    VLogf(Level, fmt, args);                 \
    va_end(args);                            \
  }

P3D_DEFINE_LOG_FN(LogError, LogLevel::kError)
P3D_DEFINE_LOG_FN(LogWarn, LogLevel::kWarn)
P3D_DEFINE_LOG_FN(LogInfo, LogLevel::kInfo)
P3D_DEFINE_LOG_FN(LogDebug, LogLevel::kDebug)

#undef P3D_DEFINE_LOG_FN

}  // namespace p3d::util
