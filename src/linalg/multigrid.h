// Geometric multigrid for SPD systems assembled on tensor-product hex grids
// (the FEA thermal matrices).
//
// The hierarchy coarsens the LATERAL grid by 2x per level and keeps every z
// plane: the thermal mesh has few vertical elements (one per device layer /
// interlayer plus a handful through the bulk), and conductivity varies only
// with z, so the coarse trilinear spaces are exactly nested in the fine one.
// With exact 2x2x2 Gauss quadrature that makes the re-assembled coarse
// operators equal the Galerkin triple products P^T A P — variational
// multigrid at assembly cost, without materializing the triple product.
//
// Components per level:
//   * 4-color Z-LINE Gauss-Seidel smoothing: each lateral node column's
//     vertical tridiagonal block is solved exactly (LDL^T, factored once at
//     Build), sweeping the four lateral parity classes (ix%2, iy%2) in a
//     fixed order. The thermal mesh is strongly anisotropic — interlayer
//     elements are ~0.7 um tall under ~40 um lateral spacing — so the thin
//     planes behave like (2D bilinear mass) x (1D vertical stiffness):
//     vertical coupling dominates by orders of magnitude (point Jacobi
//     diverges outright), and the lateral coupling is mass-like, meaning
//     the laterally OSCILLATORY modes carry the SMALLEST eigenvalues.
//     Jacobi-type column smoothing leaves those barely damped and the
//     coarse lateral grids cannot represent them, stalling the V-cycle
//     near a 0.98 contraction factor; Gauss-Seidel across the colors
//     damps them strongly (the mass block is well-conditioned). Lateral
//     couplings only reach +-1 node, so columns within a color are fully
//     decoupled: sweeps parallelize over each color with per-index writes
//     and a fixed color order — bit-identical at any thread count.
//     Post-smoothing runs the colors in REVERSE order, making the V-cycle
//     a symmetric operator, required for use inside CG,
//   * lateral-bilinear prolongation (identity in z) and its exact adjoint as
//     restriction (full weighting up to the nested-space scaling),
//   * a coarsest-grid solve: dense Cholesky when the coarse system is small
//     (the common case — a 24x24 lateral grid bottoms out at 3x3), else a
//     tight-tolerance Jacobi-CG fallback.
//
// V-cycles run either standalone (Solve) or as a CG preconditioner
// (PrecondApply via linalg::CgPreconditioner::kMultigrid).
//
// Determinism and sharing: every kernel uses the deterministic parallel
// runtime (fixed chunking, per-index writes, ordered reduction) — results
// are bit-identical for any thread count. All state is immutable after
// Build; scratch vectors live on the caller's stack, so one hierarchy may
// serve any number of concurrent solves (thermal::FeaAssembly shares one
// across jobs through serve::FeaContextCache).
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/cg.h"
#include "linalg/csr.h"

namespace p3d::linalg {

/// One level's tensor-product grid shape: nx x ny lateral elements and
/// nz_nodes horizontal node planes ((nx+1)*(ny+1)*nz_nodes nodes, ordered
/// x-fastest then y then z — thermal::FeaSolver::NodeId's layout).
struct MgGrid {
  int nx = 0;
  int ny = 0;
  int nz_nodes = 0;

  std::int32_t NumNodes() const {
    return static_cast<std::int32_t>((nx + 1) * (ny + 1) * nz_nodes);
  }
  friend bool operator==(const MgGrid&, const MgGrid&) = default;
};

struct MultigridOptions {
  int pre_smooth = 1;   // z-line smoothing sweeps before coarse correction
  int post_smooth = 1;  // ... and after (keep equal: symmetry for CG)
  /// Relaxation factor of the colored z-line Gauss-Seidel smoother (an SSOR
  /// weight: the same value is used forward and reverse, preserving V-cycle
  /// symmetry). 1.0 — plain block Gauss-Seidel — is robust here; values in
  /// (0, 2) remain convergent for SPD operators.
  double sor_weight = 1.0;
  // Coarsening stops when a lateral dimension goes odd or would drop below
  // this many elements, or at max_levels.
  int min_lateral_elems = 2;
  int max_levels = 8;
  // Coarsest-grid systems up to this dimension get a dense Cholesky factor;
  // larger ones fall back to Jacobi-CG at coarse_cg_tolerance.
  std::int32_t coarse_direct_max_dim = 1024;
  double coarse_cg_tolerance = 1e-12;

  friend bool operator==(const MultigridOptions&,
                         const MultigridOptions&) = default;
};

class MultigridHierarchy {
 public:
  MultigridHierarchy() = default;

  /// The level shapes Build expects for a given fine grid: plan[0] is `fine`,
  /// each following level halves nx/ny and keeps nz_nodes. Size 1 means the
  /// grid cannot be coarsened (odd or too-small lateral dimensions) — callers
  /// should fall back to a single-level preconditioner instead of building a
  /// degenerate hierarchy.
  static std::vector<MgGrid> CoarsenPlan(const MgGrid& fine,
                                         const MultigridOptions& options = {});

  /// Builds a hierarchy from per-level operators. `matrices[l]` must be the
  /// (re-assembled or Galerkin) operator on `grids[l]`; grids must follow a
  /// CoarsenPlan-shaped sequence (each level halves nx/ny, same nz_nodes).
  static MultigridHierarchy Build(std::vector<CsrMatrix> matrices,
                                  std::vector<MgGrid> grids,
                                  const MultigridOptions& options = {});

  /// One V-cycle improving `x` (used as the initial iterate) toward
  /// A x = b on the finest level.
  void VCycle(const std::vector<double>& b, std::vector<double>* x,
              runtime::ThreadPool* pool = nullptr) const;

  /// Preconditioner application z = B r (one V-cycle from a zero initial
  /// iterate). Symmetric positive definite for equal pre/post smoothing, so
  /// it is a valid CG preconditioner. Thread-safe on a const hierarchy.
  void PrecondApply(const std::vector<double>& r, std::vector<double>* z,
                    runtime::ThreadPool* pool = nullptr) const;

  /// Standalone solver: repeats V-cycles until the true residual satisfies
  /// ||b - Ax|| / ||b|| < rel_tolerance or max_cycles is hit. `x` seeds the
  /// iteration (warm starts work exactly like CG's). CgResult::iters counts
  /// V-cycles.
  CgResult Solve(const std::vector<double>& b, std::vector<double>* x,
                 int max_cycles, double rel_tolerance,
                 runtime::ThreadPool* pool = nullptr) const;

  bool empty() const { return levels_.empty(); }
  int NumLevels() const { return static_cast<int>(levels_.size()); }
  std::int32_t Dim() const { return levels_.empty() ? 0 : levels_[0].a.Dim(); }
  const CsrMatrix& Matrix(int level) const {
    return levels_[static_cast<std::size_t>(level)].a;
  }
  const MgGrid& Grid(int level) const {
    return levels_[static_cast<std::size_t>(level)].grid;
  }
  /// True when the coarsest level solves through the dense Cholesky factor.
  bool CoarseDirect() const { return !coarse_chol_.empty(); }
  const MultigridOptions& options() const { return options_; }
  /// Operator storage across all levels (reporting).
  std::size_t TotalNonZeros() const;

 private:
  struct Level {
    CsrMatrix a;
    MgGrid grid;
    // LDL^T factors of the per-column vertical tridiagonal blocks, indexed
    // by node id: line_l[n] is the elimination multiplier tying node n to
    // the node one z plane below it (0 on the bottom plane), line_dinv[n]
    // the inverse pivot. Factored once at Build; immutable afterwards.
    std::vector<double> line_l;
    std::vector<double> line_dinv;
  };

  /// Per-call scratch: one set of vectors per level, reused across the
  /// levels of one V-cycle and across the cycles of one Solve.
  struct Workspace {
    std::vector<std::vector<double>> x, b, tmp;
  };

  /// Extracts and LDL^T-factors the z-line tridiagonal blocks of a freshly
  /// assembled level (Build helper).
  static void FactorLines(Level* lvl);

  Workspace MakeWorkspace() const;
  void VCycleLevel(int level, const std::vector<double>& b,
                   std::vector<double>* x, Workspace* ws,
                   runtime::ThreadPool* pool) const;
  /// One colored z-line Gauss-Seidel sweep; `reverse` flips the color order
  /// (post-smoothing runs reversed so the V-cycle is symmetric).
  void Smooth(const Level& lvl, const std::vector<double>& b,
              std::vector<double>* x, std::vector<double>* tmp, bool reverse,
              runtime::ThreadPool* pool) const;
  void Restrict(int fine_level, const std::vector<double>& fine,
                std::vector<double>* coarse, runtime::ThreadPool* pool) const;
  void ProlongAdd(int fine_level, const std::vector<double>& coarse,
                  std::vector<double>* fine, runtime::ThreadPool* pool) const;
  void CoarseSolve(const std::vector<double>& b, std::vector<double>* x,
                   runtime::ThreadPool* pool) const;

  std::vector<Level> levels_;
  MultigridOptions options_;
  // Dense Cholesky factor of the coarsest operator, lower triangle packed
  // row-major (row i holds i+1 entries). Empty = CG coarse solve.
  std::vector<double> coarse_chol_;
};

}  // namespace p3d::linalg
