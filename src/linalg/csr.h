// Compressed sparse row matrices for the finite-element thermal solver.
//
// The FEA assembly pattern is: accumulate (row, col, value) triplets element
// by element, then compress once. Matrices from Galerkin assembly of the heat
// equation are symmetric positive definite, which the CG solver relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/thread_pool.h"

namespace p3d::linalg {

/// Triplet accumulator with duplicate summing on compression.
class CooBuilder {
 public:
  explicit CooBuilder(std::int32_t n) : n_(n) {}

  void Add(std::int32_t row, std::int32_t col, double value) {
    rows_.push_back(row);
    cols_.push_back(col);
    vals_.push_back(value);
  }

  std::int32_t Dim() const { return n_; }
  std::size_t NumTriplets() const { return vals_.size(); }

  const std::vector<std::int32_t>& rows() const { return rows_; }
  const std::vector<std::int32_t>& cols() const { return cols_; }
  const std::vector<double>& vals() const { return vals_; }

 private:
  std::int32_t n_;
  std::vector<std::int32_t> rows_;
  std::vector<std::int32_t> cols_;
  std::vector<double> vals_;
};

/// Square CSR matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Compresses a triplet set, summing duplicates.
  static CsrMatrix FromCoo(const CooBuilder& coo);

  std::int32_t Dim() const { return n_; }
  std::size_t NumNonZeros() const { return vals_.size(); }

  /// y = A * x. x and y must have Dim() entries and must not alias. With a
  /// pool, rows are computed in parallel; each row's dot product stays a
  /// serial left-to-right accumulation into its own output slot, so the
  /// result is bit-identical for any thread count (null pool = serial).
  void Multiply(const std::vector<double>& x, std::vector<double>* y,
                runtime::ThreadPool* pool = nullptr) const;

  /// Returns the diagonal (for Jacobi preconditioning). Missing diagonal
  /// entries are reported as 0.
  std::vector<double> Diagonal() const;

  /// Entry lookup (slow; test/debug only).
  double At(std::int32_t row, std::int32_t col) const;

  /// Max |A_ij - A_ji| (symmetry check; test/debug only).
  double SymmetryError() const;

  const std::vector<std::int32_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::int32_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return vals_; }

 private:
  std::int32_t n_ = 0;
  std::vector<std::int32_t> row_ptr_;
  std::vector<std::int32_t> col_idx_;
  std::vector<double> vals_;
};

}  // namespace p3d::linalg
