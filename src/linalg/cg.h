// Preconditioned conjugate gradient for symmetric positive-definite systems
// (the FEA thermal matrices).
//
// Three preconditioners are available:
//   * Jacobi    — M = diag(A); free to build, modest iteration savings.
//   * IC(0)     — incomplete Cholesky on the sparsity pattern of A, with an
//     automatic diagonal-shift restart on breakdown. Costs one factorization
//     per matrix, then cuts iteration counts several-fold on the FEA meshes.
//   * Multigrid — one geometric V-cycle per application, against a prebuilt
//     linalg::MultigridHierarchy (BuildMultigrid). Mesh-size-independent
//     iteration counts on the FEA matrices; only reachable through a
//     prebuilt hierarchy — Build(a, kMultigrid) has no grid information and
//     degrades to Jacobi (counted as cg/mg_fallbacks).
// A CgPreconditioner can be built once per matrix and reused across solves
// (see thermal::FeaContext), which is where IC(0)'s build cost amortizes.
//
// Determinism: SpMV / dot / axpy run on the deterministic parallel runtime
// (fixed chunking, ordered combination); the preconditioner application is
// serial (Jacobi's scaling loop runs through ParallelFor with fixed chunks,
// IC(0)'s triangular solves are inherently sequential). Every solve is
// bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "linalg/csr.h"

namespace p3d::linalg {

class MultigridHierarchy;

enum class PreconditionerKind {
  kJacobi,
  kIc0,
  kMultigrid,
};

/// Returns "jacobi" / "ic0" / "multigrid".
const char* PreconditionerName(PreconditionerKind kind);

struct CgOptions {
  int max_iters = 2000;
  double rel_tolerance = 1e-9;  // on the true residual norm ||b - Ax|| / ||b||
  // Parallel runtime width for SpMV / dot / axpy (0 = all hardware threads).
  // The solve is bit-identical for every value: reductions use fixed
  // chunking with ordered combination (see src/runtime/parallel.h).
  int threads = 1;
  // Preconditioner built internally by SolveCg. Callers that solve the same
  // matrix repeatedly should build a CgPreconditioner once and use
  // SolveCgPreconditioned instead.
  PreconditionerKind preconditioner = PreconditionerKind::kJacobi;

  friend bool operator==(const CgOptions&, const CgOptions&) = default;
};

struct CgResult {
  int iters = 0;
  double residual_norm = 0.0;  // final ||b - Ax|| / ||b||
  bool converged = false;
};

/// A preconditioner prebuilt from one matrix, reusable across any number of
/// solves against that matrix. Movable value type.
class CgPreconditioner {
 public:
  CgPreconditioner() = default;

  /// Factors `a` (Jacobi: inverts the diagonal; IC(0): incomplete Cholesky
  /// with diagonal-shift restart on breakdown — never fails on an SPD-ish
  /// matrix, the shift grows until the factorization completes). kMultigrid
  /// needs grid information a bare matrix does not carry, so this overload
  /// degrades it to Jacobi — build the hierarchy and use BuildMultigrid.
  static CgPreconditioner Build(const CsrMatrix& a, PreconditionerKind kind);

  /// Wraps a prebuilt geometric-multigrid hierarchy (one V-cycle per Apply).
  /// The hierarchy's finest matrix must be the matrix later solved with.
  /// Shared ownership: many preconditioners (across threads) may wrap one
  /// hierarchy — Apply is const and allocates its scratch per call.
  static CgPreconditioner BuildMultigrid(
      std::shared_ptr<const MultigridHierarchy> hierarchy);

  /// z = M^-1 r. Deterministic for any thread count; Jacobi / IC(0) ignore
  /// `pool` (serial application), multigrid runs its V-cycle kernels on it.
  void Apply(const std::vector<double>& r, std::vector<double>* z,
             runtime::ThreadPool* pool = nullptr) const;

  PreconditionerKind kind() const { return kind_; }
  bool empty() const {
    return inv_diag_.empty() && ic_vals_.empty() && mg_ == nullptr;
  }
  /// The wrapped hierarchy (null unless built via BuildMultigrid).
  const std::shared_ptr<const MultigridHierarchy>& hierarchy() const {
    return mg_;
  }
  /// Diagonal shift the IC(0) factorization needed (0.0 = clean factor).
  double ic_shift() const { return ic_shift_; }

 private:
  PreconditionerKind kind_ = PreconditionerKind::kJacobi;

  // Jacobi: 1 / diag(A).
  std::vector<double> inv_diag_;

  // IC(0): lower-triangular factor L (pattern of lower(A), diagonal
  // included) in CSR, plus its transpose for the backward solve.
  std::vector<std::int32_t> ic_row_ptr_, ic_col_;
  std::vector<double> ic_vals_;
  std::vector<std::int32_t> icT_row_ptr_, icT_col_;
  std::vector<double> icT_vals_;
  std::vector<double> ic_inv_diag_;  // 1 / L_ii, hoisted out of the solves
  double ic_shift_ = 0.0;

  // Multigrid: shared immutable hierarchy (V-cycle per Apply).
  std::shared_ptr<const MultigridHierarchy> mg_;

  bool BuildIc0(const CsrMatrix& a, double shift);
};

/// Solves A x = b; `x` is used as the initial guess and receives the result.
/// Builds the preconditioner selected by `options` internally.
CgResult SolveCg(const CsrMatrix& a, const std::vector<double>& b,
                 std::vector<double>* x, const CgOptions& options = {});

/// Same solve, but reusing a prebuilt preconditioner (which must have been
/// built from `a`). `options.preconditioner` is ignored.
CgResult SolveCgPreconditioned(const CsrMatrix& a,
                               const CgPreconditioner& precond,
                               const std::vector<double>& b,
                               std::vector<double>* x,
                               const CgOptions& options = {});

}  // namespace p3d::linalg
