// Jacobi-preconditioned conjugate gradient for symmetric positive-definite
// systems (the FEA thermal matrices).
#pragma once

#include <vector>

#include "linalg/csr.h"

namespace p3d::linalg {

struct CgOptions {
  int max_iters = 2000;
  double rel_tolerance = 1e-9;  // on the preconditioned residual norm
  // Parallel runtime width for SpMV / dot / axpy (0 = all hardware threads).
  // The solve is bit-identical for every value: reductions use fixed
  // chunking with ordered combination (see src/runtime/parallel.h).
  int threads = 1;
};

struct CgResult {
  int iters = 0;
  double residual_norm = 0.0;  // final ||b - Ax|| / ||b||
  bool converged = false;
};

/// Solves A x = b; `x` is used as the initial guess and receives the result.
CgResult SolveCg(const CsrMatrix& a, const std::vector<double>& b,
                 std::vector<double>* x, const CgOptions& options = {});

}  // namespace p3d::linalg
