#include "linalg/multigrid.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "util/log.h"

namespace p3d::linalg {
namespace {

// Fixed chunk sizes for the element-wise kernels and reductions; constants
// keep chunk boundaries independent of the thread count (determinism).
constexpr std::int64_t kElemGrain = 4096;
constexpr std::int64_t kDotGrain = 2048;
constexpr std::int64_t kColGrain = 256;  // z columns per smoother chunk

double Dot(runtime::ThreadPool* pool, const std::vector<double>& a,
           const std::vector<double>& b) {
  return runtime::ParallelReduce(
      pool, 0, static_cast<std::int64_t>(a.size()), kDotGrain, 0.0,
      [&](std::int64_t lo, std::int64_t hi) {
        double acc = 0.0;
        for (std::int64_t i = lo; i < hi; ++i) {
          acc += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
        }
        return acc;
      },
      [](double acc, double partial) { return acc + partial; });
}

double Norm(runtime::ThreadPool* pool, const std::vector<double>& a) {
  return std::sqrt(Dot(pool, a, a));
}

/// Dense Cholesky of a CSR matrix, lower triangle packed row-major.
/// Returns an empty vector on breakdown (not SPD at this size).
std::vector<double> DenseCholesky(const CsrMatrix& a) {
  const std::int32_t n = a.Dim();
  const std::size_t un = static_cast<std::size_t>(n);
  std::vector<double> l(un * (un + 1) / 2, 0.0);
  const auto at = [&](std::int32_t i, std::int32_t j) -> double& {
    return l[static_cast<std::size_t>(i) * (static_cast<std::size_t>(i) + 1) /
                 2 +
             static_cast<std::size_t>(j)];
  };
  // Scatter the lower triangle of A into the packed factor, then run the
  // factorization in place.
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& vals = a.values();
  for (std::int32_t i = 0; i < n; ++i) {
    for (std::int32_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::int32_t c = col_idx[static_cast<std::size_t>(k)];
      if (c <= i) at(i, c) = vals[static_cast<std::size_t>(k)];
    }
  }
  for (std::int32_t j = 0; j < n; ++j) {
    double d = at(j, j);
    for (std::int32_t k = 0; k < j; ++k) d -= at(j, k) * at(j, k);
    if (!(d > 0.0)) return {};
    const double ljj = std::sqrt(d);
    at(j, j) = ljj;
    for (std::int32_t i = j + 1; i < n; ++i) {
      double s = at(i, j);
      for (std::int32_t k = 0; k < j; ++k) s -= at(i, k) * at(j, k);
      at(i, j) = s / ljj;
    }
  }
  return l;
}

}  // namespace

std::vector<MgGrid> MultigridHierarchy::CoarsenPlan(
    const MgGrid& fine, const MultigridOptions& options) {
  std::vector<MgGrid> plan{fine};
  while (static_cast<int>(plan.size()) < options.max_levels) {
    const MgGrid& g = plan.back();
    if (g.nx % 2 != 0 || g.ny % 2 != 0) break;
    const int cnx = g.nx / 2;
    const int cny = g.ny / 2;
    if (cnx < options.min_lateral_elems || cny < options.min_lateral_elems) {
      break;
    }
    plan.push_back(MgGrid{cnx, cny, g.nz_nodes});
  }
  return plan;
}

MultigridHierarchy MultigridHierarchy::Build(std::vector<CsrMatrix> matrices,
                                             std::vector<MgGrid> grids,
                                             const MultigridOptions& options) {
  assert(!matrices.empty() && matrices.size() == grids.size());
  MultigridHierarchy h;
  h.options_ = options;
  h.levels_.reserve(matrices.size());
  for (std::size_t l = 0; l < matrices.size(); ++l) {
    assert(matrices[l].Dim() == grids[l].NumNodes());
    if (l > 0) {
      assert(grids[l].nx * 2 == grids[l - 1].nx &&
             grids[l].ny * 2 == grids[l - 1].ny &&
             grids[l].nz_nodes == grids[l - 1].nz_nodes);
    }
    Level lvl;
    lvl.a = std::move(matrices[l]);
    lvl.grid = grids[l];
    FactorLines(&lvl);
    h.levels_.push_back(std::move(lvl));
  }

  const CsrMatrix& coarse = h.levels_.back().a;
  if (coarse.Dim() <= options.coarse_direct_max_dim) {
    h.coarse_chol_ = DenseCholesky(coarse);
    if (h.coarse_chol_.empty()) {
      util::LogWarn(
          "multigrid: coarse Cholesky broke down (dim %d); using CG coarse "
          "solves",
          coarse.Dim());
    }
  }
  obs::MetricAdd("mg/builds", 1);
  return h;
}

std::size_t MultigridHierarchy::TotalNonZeros() const {
  std::size_t nnz = 0;
  for (const Level& l : levels_) nnz += l.a.NumNonZeros();
  return nnz;
}

MultigridHierarchy::Workspace MultigridHierarchy::MakeWorkspace() const {
  Workspace ws;
  const std::size_t nl = levels_.size();
  ws.x.resize(nl);
  ws.b.resize(nl);
  ws.tmp.resize(nl);
  for (std::size_t l = 0; l < nl; ++l) {
    const std::size_t n = static_cast<std::size_t>(levels_[l].a.Dim());
    if (l > 0) {
      ws.x[l].resize(n);
      ws.b[l].resize(n);
    }
    ws.tmp[l].resize(n);
  }
  return ws;
}

void MultigridHierarchy::FactorLines(Level* lvl) {
  // Per-column vertical tridiagonal blocks — the exact diagonal blocks of
  // the column partition of A — factored LDL^T per column, stored by node
  // id. Principal submatrices of an SPD operator, so the pivots stay
  // positive.
  const std::int32_t n = lvl->a.Dim();
  const std::size_t un = static_cast<std::size_t>(n);
  const std::int32_t plane =
      static_cast<std::int32_t>((lvl->grid.nx + 1) * (lvl->grid.ny + 1));
  const auto& row_ptr = lvl->a.row_ptr();
  const auto& col_idx = lvl->a.col_idx();
  const auto& vals = lvl->a.values();

  // Pass 1: tridiagonal entries per node — diagonal into line_dinv,
  // coupling to the node one plane below into line_l.
  lvl->line_l.assign(un, 0.0);
  lvl->line_dinv.assign(un, 0.0);
  for (std::int32_t i = 0; i < n; ++i) {
    for (std::int32_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::int32_t c = col_idx[static_cast<std::size_t>(k)];
      const double v = vals[static_cast<std::size_t>(k)];
      if (c == i) {
        lvl->line_dinv[static_cast<std::size_t>(i)] = v;
      } else if (c == i - plane) {
        lvl->line_l[static_cast<std::size_t>(i)] = v;
      }
    }
  }
  // Pass 2: LDL^T elimination down each column.
  for (std::int32_t col = 0; col < plane; ++col) {
    double prev_d = 0.0;
    for (std::int32_t node = col; node < n; node += plane) {
      const std::size_t u = static_cast<std::size_t>(node);
      double d = lvl->line_dinv[u];
      if (node >= plane) {
        const double l = lvl->line_l[u] / prev_d;
        d -= l * lvl->line_l[u];
        lvl->line_l[u] = l;
      }
      assert(d > 0.0);
      prev_d = d;
      lvl->line_dinv[u] = 1.0 / d;
    }
  }
}

void MultigridHierarchy::Smooth(const Level& lvl, const std::vector<double>& b,
                                std::vector<double>* x,
                                std::vector<double>* tmp, bool reverse,
                                runtime::ThreadPool* pool) const {
  // Colored z-line Gauss-Seidel: the four lateral parity classes
  // (ix%2, iy%2) in a fixed order (reversed for post-smoothing — the
  // adjoint sweep, keeping the V-cycle symmetric). Lateral couplings reach
  // only +-1 node, so columns within one color are fully decoupled: the
  // per-color ParallelFor writes disjoint indices against a fixed snapshot
  // of the other colors, which makes the sweep bit-identical at any thread
  // count. Each column computes its current residual row-wise (into the
  // column's own slots of tmp), then solves its tridiagonal block exactly
  // through the LDL^T factors.
  const double w = options_.sor_weight;
  const int fxn = lvl.grid.nx + 1;
  const int fyn = lvl.grid.ny + 1;
  const std::int64_t plane = static_cast<std::int64_t>(fxn) * fyn;
  const std::int64_t nz = lvl.grid.nz_nodes;
  const auto& row_ptr = lvl.a.row_ptr();
  const auto& col_idx = lvl.a.col_idx();
  const auto& vals = lvl.a.values();
  for (int step = 0; step < 4; ++step) {
    const int color = reverse ? 3 - step : step;
    const int px = color & 1;
    const int py = color >> 1;
    const std::int64_t ncx = (fxn - px + 1) / 2;
    const std::int64_t ncy = (fyn - py + 1) / 2;
    if (ncx <= 0 || ncy <= 0) continue;
    runtime::ParallelFor(
        pool, 0, ncx * ncy, kColGrain, [&](std::int64_t t) {
          const std::int64_t ix = px + 2 * (t % ncx);
          const std::int64_t iy = py + 2 * (t / ncx);
          const std::int64_t col = iy * fxn + ix;
          for (std::int64_t iz = 0; iz < nz; ++iz) {
            const std::size_t u = static_cast<std::size_t>(col + iz * plane);
            double r = b[u];
            for (std::int32_t k = row_ptr[u]; k < row_ptr[u + 1]; ++k) {
              r -= vals[static_cast<std::size_t>(k)] *
                   (*x)[static_cast<std::size_t>(
                       col_idx[static_cast<std::size_t>(k)])];
            }
            (*tmp)[u] = r;
          }
          for (std::int64_t iz = 1; iz < nz; ++iz) {
            const std::size_t u = static_cast<std::size_t>(col + iz * plane);
            (*tmp)[u] -=
                lvl.line_l[u] * (*tmp)[u - static_cast<std::size_t>(plane)];
          }
          double above = 0.0;
          double l_above = 0.0;
          for (std::int64_t iz = nz; iz-- > 0;) {
            const std::size_t u = static_cast<std::size_t>(col + iz * plane);
            const double z = (*tmp)[u] * lvl.line_dinv[u] - l_above * above;
            (*x)[u] += w * z;
            above = z;
            l_above = lvl.line_l[u];
          }
        });
  }
}

void MultigridHierarchy::Restrict(int fine_level,
                                  const std::vector<double>& fine,
                                  std::vector<double>* coarse,
                                  runtime::ThreadPool* pool) const {
  const MgGrid& fg = levels_[static_cast<std::size_t>(fine_level)].grid;
  const MgGrid& cg = levels_[static_cast<std::size_t>(fine_level) + 1].grid;
  const int fxn = fg.nx + 1;
  const int fyn = fg.ny + 1;
  const int cxn = cg.nx + 1;
  const int cyn = cg.ny + 1;
  coarse->resize(static_cast<std::size_t>(cg.NumNodes()));
  // Gather form of P^T: each coarse node sums its lateral 3x3 fine-node
  // neighbourhood with bilinear weights (1 at the coincident node, 1/2 at
  // edge neighbours, 1/4 at corners); z is an identity. Per-index writes
  // keep the kernel deterministic at any thread count.
  runtime::ParallelFor(
      pool, 0, static_cast<std::int64_t>(cg.NumNodes()), kElemGrain,
      [&](std::int64_t i) {
        const int cx = static_cast<int>(i % cxn);
        const int cy = static_cast<int>((i / cxn) % cyn);
        const int iz = static_cast<int>(i / (cxn * cyn));
        const std::size_t fz_base =
            static_cast<std::size_t>(iz) * static_cast<std::size_t>(fxn * fyn);
        double acc = 0.0;
        for (int dy = -1; dy <= 1; ++dy) {
          const int fy = 2 * cy + dy;
          if (fy < 0 || fy >= fyn) continue;
          const double wy = dy == 0 ? 1.0 : 0.5;
          for (int dx = -1; dx <= 1; ++dx) {
            const int fx = 2 * cx + dx;
            if (fx < 0 || fx >= fxn) continue;
            const double wx = dx == 0 ? 1.0 : 0.5;
            acc += wx * wy *
                   fine[fz_base + static_cast<std::size_t>(fy * fxn + fx)];
          }
        }
        (*coarse)[static_cast<std::size_t>(i)] = acc;
      });
}

void MultigridHierarchy::ProlongAdd(int fine_level,
                                    const std::vector<double>& coarse,
                                    std::vector<double>* fine,
                                    runtime::ThreadPool* pool) const {
  const MgGrid& fg = levels_[static_cast<std::size_t>(fine_level)].grid;
  const MgGrid& cg = levels_[static_cast<std::size_t>(fine_level) + 1].grid;
  const int fxn = fg.nx + 1;
  const int fyn = fg.ny + 1;
  const int cxn = cg.nx + 1;
  const int cyn = cg.ny + 1;
  // Lateral-bilinear interpolation, identity in z: even fine indices copy
  // the coincident coarse node, odd ones average their two (or, on both
  // axes, four) lateral coarse neighbours.
  runtime::ParallelFor(
      pool, 0, static_cast<std::int64_t>(fg.NumNodes()), kElemGrain,
      [&](std::int64_t i) {
        const int fx = static_cast<int>(i % fxn);
        const int fy = static_cast<int>((i / fxn) % fyn);
        const int iz = static_cast<int>(i / (fxn * fyn));
        const std::size_t cz_base =
            static_cast<std::size_t>(iz) * static_cast<std::size_t>(cxn * cyn);
        const auto cval = [&](int cx, int cy) {
          return coarse[cz_base + static_cast<std::size_t>(cy * cxn + cx)];
        };
        const int cx = fx / 2;
        const int cy = fy / 2;
        double v;
        if (fx % 2 == 0 && fy % 2 == 0) {
          v = cval(cx, cy);
        } else if (fy % 2 == 0) {
          v = 0.5 * (cval(cx, cy) + cval(cx + 1, cy));
        } else if (fx % 2 == 0) {
          v = 0.5 * (cval(cx, cy) + cval(cx, cy + 1));
        } else {
          v = 0.25 * (cval(cx, cy) + cval(cx + 1, cy) + cval(cx, cy + 1) +
                      cval(cx + 1, cy + 1));
        }
        (*fine)[static_cast<std::size_t>(i)] += v;
      });
}

void MultigridHierarchy::CoarseSolve(const std::vector<double>& b,
                                     std::vector<double>* x,
                                     runtime::ThreadPool* pool) const {
  const Level& lvl = levels_.back();
  const std::int32_t n = lvl.a.Dim();
  if (!coarse_chol_.empty()) {
    // Forward L y = b, backward L^T x = y; serial — the coarse grid is tiny.
    const auto at = [&](std::int32_t i, std::int32_t j) {
      return coarse_chol_[static_cast<std::size_t>(i) *
                              (static_cast<std::size_t>(i) + 1) / 2 +
                          static_cast<std::size_t>(j)];
    };
    x->resize(static_cast<std::size_t>(n));
    for (std::int32_t i = 0; i < n; ++i) {
      double acc = b[static_cast<std::size_t>(i)];
      for (std::int32_t j = 0; j < i; ++j) {
        acc -= at(i, j) * (*x)[static_cast<std::size_t>(j)];
      }
      (*x)[static_cast<std::size_t>(i)] = acc / at(i, i);
    }
    for (std::int32_t ii = n; ii-- > 0;) {
      double acc = (*x)[static_cast<std::size_t>(ii)];
      for (std::int32_t j = ii + 1; j < n; ++j) {
        acc -= at(j, ii) * (*x)[static_cast<std::size_t>(j)];
      }
      (*x)[static_cast<std::size_t>(ii)] = acc / at(ii, ii);
    }
    return;
  }
  // Fallback: effectively-exact Jacobi-CG on the coarsest operator. Serial
  // (pool unused — the coarse system is small) and deterministic.
  (void)pool;
  CgOptions opts;
  opts.max_iters = std::max(1000, 4 * n);
  opts.rel_tolerance = options_.coarse_cg_tolerance;
  opts.threads = 1;
  opts.preconditioner = PreconditionerKind::kJacobi;
  x->assign(static_cast<std::size_t>(n), 0.0);
  SolveCg(lvl.a, b, x, opts);
}

void MultigridHierarchy::VCycleLevel(int level, const std::vector<double>& b,
                                     std::vector<double>* x, Workspace* ws,
                                     runtime::ThreadPool* pool) const {
  const std::size_t ul = static_cast<std::size_t>(level);
  const Level& lvl = levels_[ul];
  if (level + 1 == NumLevels()) {
    CoarseSolve(b, x, pool);
    return;
  }
  for (int s = 0; s < options_.pre_smooth; ++s) {
    Smooth(lvl, b, x, &ws->tmp[ul], /*reverse=*/false, pool);
  }
  // Residual r = b - A x (reusing tmp as r).
  lvl.a.Multiply(*x, &ws->tmp[ul], pool);
  const std::int64_t n = static_cast<std::int64_t>(b.size());
  runtime::ParallelFor(pool, 0, n, kElemGrain, [&](std::int64_t i) {
    const std::size_t u = static_cast<std::size_t>(i);
    ws->tmp[ul][u] = b[u] - ws->tmp[ul][u];
  });
  Restrict(level, ws->tmp[ul], &ws->b[ul + 1], pool);
  std::fill(ws->x[ul + 1].begin(), ws->x[ul + 1].end(), 0.0);
  VCycleLevel(level + 1, ws->b[ul + 1], &ws->x[ul + 1], ws, pool);
  ProlongAdd(level, ws->x[ul + 1], x, pool);
  for (int s = 0; s < options_.post_smooth; ++s) {
    Smooth(lvl, b, x, &ws->tmp[ul], /*reverse=*/true, pool);
  }
}

void MultigridHierarchy::VCycle(const std::vector<double>& b,
                                std::vector<double>* x,
                                runtime::ThreadPool* pool) const {
  assert(!levels_.empty());
  if (x->size() != b.size()) x->assign(b.size(), 0.0);
  Workspace ws = MakeWorkspace();
  VCycleLevel(0, b, x, &ws, pool);
}

void MultigridHierarchy::PrecondApply(const std::vector<double>& r,
                                      std::vector<double>* z,
                                      runtime::ThreadPool* pool) const {
  assert(!levels_.empty());
  z->assign(r.size(), 0.0);
  Workspace ws = MakeWorkspace();
  VCycleLevel(0, r, z, &ws, pool);
}

CgResult MultigridHierarchy::Solve(const std::vector<double>& b,
                                   std::vector<double>* x, int max_cycles,
                                   double rel_tolerance,
                                   runtime::ThreadPool* pool) const {
  assert(!levels_.empty());
  const std::size_t n = b.size();
  assert(static_cast<std::int32_t>(n) == Dim());
  if (x->size() != n) x->assign(n, 0.0);

  obs::TraceScope trace_solve("mg.solve");
  const auto record = [](const CgResult& res) {
    obs::MetricAdd("mg/solves", 1);
    obs::MetricAdd("mg/cycles", res.iters);
    obs::MetricObserve("mg/cycles_per_solve", res.iters);
    if (!res.converged) obs::MetricAdd("mg/unconverged", 1);
  };

  CgResult result;
  const double bnorm = Norm(pool, b);
  if (bnorm == 0.0) {
    x->assign(n, 0.0);
    result.converged = true;
    record(result);
    return result;
  }

  Workspace ws = MakeWorkspace();
  std::vector<double> r(n);
  const std::int64_t ni = static_cast<std::int64_t>(n);
  const auto residual_norm = [&]() {
    levels_[0].a.Multiply(*x, &r, pool);
    runtime::ParallelFor(pool, 0, ni, kElemGrain, [&](std::int64_t i) {
      const std::size_t u = static_cast<std::size_t>(i);
      r[u] = b[u] - r[u];
    });
    return Norm(pool, r) / bnorm;
  };

  // Warm-started iterates can already satisfy the tolerance (mirrors the CG
  // solver's early bail, so cache hits on a quiescent placement stay cheap).
  result.residual_norm = residual_norm();
  if (result.residual_norm < rel_tolerance) {
    result.converged = true;
    record(result);
    return result;
  }

  for (int cycle = 0; cycle < max_cycles; ++cycle) {
    VCycleLevel(0, b, x, &ws, pool);
    result.iters = cycle + 1;
    result.residual_norm = residual_norm();
    if (result.residual_norm < rel_tolerance) {
      result.converged = true;
      break;
    }
  }
  record(result);
  return result;
}

}  // namespace p3d::linalg
