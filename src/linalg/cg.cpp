#include "linalg/cg.h"

#include <cassert>
#include <cmath>

namespace p3d::linalg {
namespace {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

}  // namespace

CgResult SolveCg(const CsrMatrix& a, const std::vector<double>& b,
                 std::vector<double>* x, const CgOptions& options) {
  const std::size_t n = static_cast<std::size_t>(a.Dim());
  assert(b.size() == n);
  if (x->size() != n) x->assign(n, 0.0);

  CgResult result;
  const double bnorm = Norm(b);
  if (bnorm == 0.0) {
    x->assign(n, 0.0);
    result.converged = true;
    return result;
  }

  // Jacobi preconditioner M = diag(A).
  std::vector<double> inv_diag = a.Diagonal();
  for (double& d : inv_diag) d = (d != 0.0) ? 1.0 / d : 1.0;

  std::vector<double> r(n), z(n), p(n), ap(n);
  a.Multiply(*x, &ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  p = z;
  double rz = Dot(r, z);

  for (int it = 0; it < options.max_iters; ++it) {
    a.Multiply(p, &ap);
    const double pap = Dot(p, ap);
    if (pap <= 0.0) break;  // matrix not SPD or breakdown
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) (*x)[i] += alpha * p[i];
    for (std::size_t i = 0; i < n; ++i) r[i] -= alpha * ap[i];
    result.iters = it + 1;
    const double rnorm = Norm(r);
    if (rnorm / bnorm < options.rel_tolerance) {
      result.converged = true;
      result.residual_norm = rnorm / bnorm;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const double rz_new = Dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  result.residual_norm = Norm(r) / bnorm;
  result.converged = result.residual_norm < options.rel_tolerance;
  return result;
}

}  // namespace p3d::linalg
