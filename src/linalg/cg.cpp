#include "linalg/cg.h"

#include <cassert>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace p3d::linalg {
namespace {

// Fixed reduction/element-wise chunk sizes. Determinism requires these to be
// constants (chunk boundaries must not depend on the thread count); the
// values amortize dispatch over a few thousand fused multiply-adds.
constexpr std::int64_t kDotGrain = 2048;
constexpr std::int64_t kAxpyGrain = 4096;

/// Deterministic parallel dot product: per-chunk partials accumulate
/// serially, then combine in chunk order — bit-identical for any thread
/// count, including the serial path.
double Dot(runtime::ThreadPool* pool, const std::vector<double>& a,
           const std::vector<double>& b) {
  return runtime::ParallelReduce(
      pool, 0, static_cast<std::int64_t>(a.size()), kDotGrain, 0.0,
      [&](std::int64_t lo, std::int64_t hi) {
        double acc = 0.0;
        for (std::int64_t i = lo; i < hi; ++i) {
          acc += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
        }
        return acc;
      },
      [](double acc, double partial) { return acc + partial; });
}

double Norm(runtime::ThreadPool* pool, const std::vector<double>& a) {
  return std::sqrt(Dot(pool, a, a));
}

}  // namespace

CgResult SolveCg(const CsrMatrix& a, const std::vector<double>& b,
                 std::vector<double>* x, const CgOptions& options) {
  const std::size_t n = static_cast<std::size_t>(a.Dim());
  assert(b.size() == n);
  if (x->size() != n) x->assign(n, 0.0);
  runtime::ThreadPool* pool = runtime::SharedPool(options.threads);

  obs::TraceScope trace_solve("cg.solve");
  // Iteration counts and residuals are deterministic for any thread count
  // (the reductions above combine partials in chunk order), so recording
  // them is safe under the registry's determinism contract.
  const auto record = [](const CgResult& res) {
    obs::MetricAdd("cg/solves", 1);
    obs::MetricAdd("cg/iters", res.iters);
    obs::MetricObserve("cg/iters_per_solve", res.iters);
    if (!res.converged) obs::MetricAdd("cg/unconverged", 1);
    obs::MetricSet("cg/last_rel_residual", res.residual_norm);
  };

  CgResult result;
  const double bnorm = Norm(pool, b);
  if (bnorm == 0.0) {
    x->assign(n, 0.0);
    result.converged = true;
    record(result);
    return result;
  }

  // Jacobi preconditioner M = diag(A).
  std::vector<double> inv_diag = a.Diagonal();
  for (double& d : inv_diag) d = (d != 0.0) ? 1.0 / d : 1.0;

  const std::int64_t ni = static_cast<std::int64_t>(n);
  std::vector<double> r(n), z(n), p(n), ap(n);
  a.Multiply(*x, &ap, pool);
  runtime::ParallelFor(pool, 0, ni, kAxpyGrain, [&](std::int64_t i) {
    const std::size_t u = static_cast<std::size_t>(i);
    r[u] = b[u] - ap[u];
    z[u] = inv_diag[u] * r[u];
  });
  p = z;
  double rz = Dot(pool, r, z);

  for (int it = 0; it < options.max_iters; ++it) {
    a.Multiply(p, &ap, pool);
    const double pap = Dot(pool, p, ap);
    if (pap <= 0.0) break;  // matrix not SPD or breakdown
    const double alpha = rz / pap;
    runtime::ParallelFor(pool, 0, ni, kAxpyGrain, [&](std::int64_t i) {
      const std::size_t u = static_cast<std::size_t>(i);
      (*x)[u] += alpha * p[u];
      r[u] -= alpha * ap[u];
    });
    result.iters = it + 1;
    const double rnorm = Norm(pool, r);
    if (rnorm / bnorm < options.rel_tolerance) {
      result.converged = true;
      result.residual_norm = rnorm / bnorm;
      record(result);
      return result;
    }
    runtime::ParallelFor(pool, 0, ni, kAxpyGrain, [&](std::int64_t i) {
      const std::size_t u = static_cast<std::size_t>(i);
      z[u] = inv_diag[u] * r[u];
    });
    const double rz_new = Dot(pool, r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    runtime::ParallelFor(pool, 0, ni, kAxpyGrain, [&](std::int64_t i) {
      const std::size_t u = static_cast<std::size_t>(i);
      p[u] = z[u] + beta * p[u];
    });
  }
  result.residual_norm = Norm(pool, r) / bnorm;
  result.converged = result.residual_norm < options.rel_tolerance;
  record(result);
  return result;
}

}  // namespace p3d::linalg
