#include "linalg/cg.h"

#include <cassert>
#include <cmath>
#include <utility>

#include "linalg/multigrid.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace p3d::linalg {
namespace {

// Fixed reduction/element-wise chunk sizes. Determinism requires these to be
// constants (chunk boundaries must not depend on the thread count); the
// values amortize dispatch over a few thousand fused multiply-adds.
constexpr std::int64_t kDotGrain = 2048;
constexpr std::int64_t kAxpyGrain = 4096;

/// Deterministic parallel dot product: per-chunk partials accumulate
/// serially, then combine in chunk order — bit-identical for any thread
/// count, including the serial path.
double Dot(runtime::ThreadPool* pool, const std::vector<double>& a,
           const std::vector<double>& b) {
  return runtime::ParallelReduce(
      pool, 0, static_cast<std::int64_t>(a.size()), kDotGrain, 0.0,
      [&](std::int64_t lo, std::int64_t hi) {
        double acc = 0.0;
        for (std::int64_t i = lo; i < hi; ++i) {
          acc += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
        }
        return acc;
      },
      [](double acc, double partial) { return acc + partial; });
}

double Norm(runtime::ThreadPool* pool, const std::vector<double>& a) {
  return std::sqrt(Dot(pool, a, a));
}

}  // namespace

const char* PreconditionerName(PreconditionerKind kind) {
  switch (kind) {
    case PreconditionerKind::kJacobi: return "jacobi";
    case PreconditionerKind::kIc0: return "ic0";
    case PreconditionerKind::kMultigrid: return "multigrid";
  }
  return "unknown";
}

bool CgPreconditioner::BuildIc0(const CsrMatrix& a, double shift) {
  const std::int32_t n = a.Dim();
  ic_row_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  ic_col_.clear();
  ic_vals_.clear();

  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& vals = a.values();

  // Copy the lower triangle (diagonal included, shifted) into the factor's
  // storage; the factorization then runs in place.
  for (std::int32_t i = 0; i < n; ++i) {
    bool saw_diag = false;
    for (std::int32_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::int32_t c = col_idx[static_cast<std::size_t>(k)];
      if (c > i) break;  // columns are sorted within a row
      double v = vals[static_cast<std::size_t>(k)];
      if (c == i) {
        if (v <= 0.0) return false;  // not SPD-ish; caller falls back
        v *= 1.0 + shift;
        saw_diag = true;
      }
      ic_col_.push_back(c);
      ic_vals_.push_back(v);
    }
    if (!saw_diag) return false;  // structurally missing diagonal
    ic_row_ptr_[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int32_t>(ic_col_.size());
  }

  // Left-looking row factorization. For each entry (i, k):
  //   l_ik = (a_ik - <L_i, L_k>_{cols < k}) / l_kk        (k < i)
  //   l_ii = sqrt(a_ii - <L_i, L_i>_{cols < i})
  // The sparse dots merge two column-sorted row prefixes with two pointers.
  for (std::int32_t i = 0; i < n; ++i) {
    const std::int32_t row_lo = ic_row_ptr_[static_cast<std::size_t>(i)];
    const std::int32_t row_hi = ic_row_ptr_[static_cast<std::size_t>(i) + 1];
    for (std::int32_t ik = row_lo; ik < row_hi; ++ik) {
      const std::int32_t k = ic_col_[static_cast<std::size_t>(ik)];
      if (k < i) {
        const std::int32_t krow_lo = ic_row_ptr_[static_cast<std::size_t>(k)];
        const std::int32_t krow_hi =
            ic_row_ptr_[static_cast<std::size_t>(k) + 1];
        double dot = 0.0;
        std::int32_t p = row_lo, q = krow_lo;
        while (p < ik && q < krow_hi - 1) {  // krow's last entry is l_kk
          const std::int32_t cp = ic_col_[static_cast<std::size_t>(p)];
          const std::int32_t cq = ic_col_[static_cast<std::size_t>(q)];
          if (cp == cq) {
            dot += ic_vals_[static_cast<std::size_t>(p)] *
                   ic_vals_[static_cast<std::size_t>(q)];
            ++p;
            ++q;
          } else if (cp < cq) {
            ++p;
          } else {
            ++q;
          }
        }
        const double l_kk = ic_vals_[static_cast<std::size_t>(krow_hi - 1)];
        ic_vals_[static_cast<std::size_t>(ik)] =
            (ic_vals_[static_cast<std::size_t>(ik)] - dot) / l_kk;
      } else {  // k == i: the diagonal closes the row
        double sq = 0.0;
        for (std::int32_t p = row_lo; p < ik; ++p) {
          const double v = ic_vals_[static_cast<std::size_t>(p)];
          sq += v * v;
        }
        const double d = ic_vals_[static_cast<std::size_t>(ik)] - sq;
        if (!(d > 0.0)) return false;  // breakdown: retry with larger shift
        ic_vals_[static_cast<std::size_t>(ik)] = std::sqrt(d);
      }
    }
  }

  // Transpose (CSR of L^T) for the backward substitution, plus the hoisted
  // reciprocal diagonal.
  icT_row_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  icT_col_.assign(ic_col_.size(), 0);
  icT_vals_.assign(ic_vals_.size(), 0.0);
  for (const std::int32_t c : ic_col_) {
    icT_row_ptr_[static_cast<std::size_t>(c) + 1] += 1;
  }
  for (std::int32_t r = 0; r < n; ++r) {
    icT_row_ptr_[static_cast<std::size_t>(r) + 1] +=
        icT_row_ptr_[static_cast<std::size_t>(r)];
  }
  std::vector<std::int32_t> fill(icT_row_ptr_.begin(), icT_row_ptr_.end() - 1);
  for (std::int32_t i = 0; i < n; ++i) {
    for (std::int32_t k = ic_row_ptr_[static_cast<std::size_t>(i)];
         k < ic_row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::int32_t c = ic_col_[static_cast<std::size_t>(k)];
      const std::int32_t slot = fill[static_cast<std::size_t>(c)]++;
      icT_col_[static_cast<std::size_t>(slot)] = i;
      icT_vals_[static_cast<std::size_t>(slot)] =
          ic_vals_[static_cast<std::size_t>(k)];
    }
  }
  ic_inv_diag_.resize(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    ic_inv_diag_[static_cast<std::size_t>(i)] =
        1.0 / ic_vals_[static_cast<std::size_t>(
                  ic_row_ptr_[static_cast<std::size_t>(i) + 1] - 1)];
  }
  ic_shift_ = shift;
  return true;
}

CgPreconditioner CgPreconditioner::BuildMultigrid(
    std::shared_ptr<const MultigridHierarchy> hierarchy) {
  assert(hierarchy != nullptr && !hierarchy->empty());
  CgPreconditioner p;
  p.kind_ = PreconditionerKind::kMultigrid;
  p.mg_ = std::move(hierarchy);
  return p;
}

CgPreconditioner CgPreconditioner::Build(const CsrMatrix& a,
                                         PreconditionerKind kind) {
  CgPreconditioner p;
  p.kind_ = kind;
  if (kind == PreconditionerKind::kMultigrid) {
    // No grid information here — a hierarchy cannot be built from the bare
    // matrix. Degrade to Jacobi (callers that want multigrid go through
    // BuildMultigrid with a prebuilt hierarchy, e.g. thermal::FeaAssembly).
    obs::MetricAdd("cg/mg_fallbacks", 1);
    p.kind_ = PreconditionerKind::kJacobi;
    kind = PreconditionerKind::kJacobi;
  }
  if (kind == PreconditionerKind::kIc0) {
    // Diagonal-shift restart: IC(0) can break down on matrices that are SPD
    // but not diagonally dominant. Each failure retries with a 10x larger
    // relative shift; the FEA matrices factor cleanly at shift 0.
    for (double shift = 0.0; shift <= 1.0e4;
         shift = (shift == 0.0 ? 1e-3 : shift * 10.0)) {
      if (p.BuildIc0(a, shift)) {
        obs::MetricAdd("cg/ic0_builds", 1);
        if (shift > 0.0) obs::MetricAdd("cg/ic0_shift_restarts", 1);
        return p;
      }
    }
    // Pathological matrix: degrade to Jacobi rather than failing the solve.
    p.ic_row_ptr_.clear();
    p.ic_col_.clear();
    p.ic_vals_.clear();
    p.kind_ = PreconditionerKind::kJacobi;
  }
  p.inv_diag_ = a.Diagonal();
  for (double& d : p.inv_diag_) d = (d != 0.0) ? 1.0 / d : 1.0;
  return p;
}

void CgPreconditioner::Apply(const std::vector<double>& r,
                             std::vector<double>* z,
                             runtime::ThreadPool* pool) const {
  if (kind_ == PreconditionerKind::kMultigrid) {
    assert(mg_ != nullptr);
    mg_->PrecondApply(r, z, pool);
    return;
  }
  const std::size_t n = r.size();
  z->resize(n);
  if (kind_ == PreconditionerKind::kJacobi) {
    assert(inv_diag_.size() == n);
    for (std::size_t i = 0; i < n; ++i) (*z)[i] = inv_diag_[i] * r[i];
    return;
  }
  // Forward substitution L y = r (y lives in *z), rows ascending; each row's
  // last stored entry is its diagonal.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = r[i];
    const std::int32_t lo = ic_row_ptr_[i];
    const std::int32_t hi = ic_row_ptr_[i + 1] - 1;
    for (std::int32_t k = lo; k < hi; ++k) {
      acc -= ic_vals_[static_cast<std::size_t>(k)] *
             (*z)[static_cast<std::size_t>(ic_col_[static_cast<std::size_t>(k)])];
    }
    (*z)[i] = acc * ic_inv_diag_[i];
  }
  // Backward substitution L^T z = y, rows descending; row i of L^T holds
  // columns >= i with the diagonal first.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = (*z)[ii];
    const std::int32_t lo = icT_row_ptr_[ii] + 1;  // skip the diagonal
    const std::int32_t hi = icT_row_ptr_[ii + 1];
    for (std::int32_t k = lo; k < hi; ++k) {
      acc -= icT_vals_[static_cast<std::size_t>(k)] *
             (*z)[static_cast<std::size_t>(icT_col_[static_cast<std::size_t>(k)])];
    }
    (*z)[ii] = acc * ic_inv_diag_[ii];
  }
}

namespace {

CgResult SolveImpl(const CsrMatrix& a, const CgPreconditioner& precond,
                   const std::vector<double>& b, std::vector<double>* x,
                   const CgOptions& options) {
  const std::size_t n = static_cast<std::size_t>(a.Dim());
  assert(b.size() == n);
  if (x->size() != n) x->assign(n, 0.0);
  runtime::ThreadPool* pool = runtime::SharedPool(options.threads);

  obs::TraceScope trace_solve("cg.solve");
  // Iteration counts and residuals are deterministic for any thread count
  // (the reductions above combine partials in chunk order), so recording
  // them is safe under the registry's determinism contract.
  const auto record = [](const CgResult& res) {
    obs::MetricAdd("cg/solves", 1);
    obs::MetricAdd("cg/iters", res.iters);
    obs::MetricObserve("cg/iters_per_solve", res.iters);
    if (!res.converged) obs::MetricAdd("cg/unconverged", 1);
    obs::MetricSet("cg/last_rel_residual", res.residual_norm);
  };

  CgResult result;
  const double bnorm = Norm(pool, b);
  if (bnorm == 0.0) {
    x->assign(n, 0.0);
    result.converged = true;
    record(result);
    return result;
  }

  const std::int64_t ni = static_cast<std::int64_t>(n);
  std::vector<double> r(n), z(n), p(n), ap(n);
  a.Multiply(*x, &ap, pool);
  runtime::ParallelFor(pool, 0, ni, kAxpyGrain, [&](std::int64_t i) {
    const std::size_t u = static_cast<std::size_t>(i);
    r[u] = b[u] - ap[u];
  });
  // Warm-started iterates can already satisfy the tolerance; bail before the
  // first SpMV so cache hits on a quiescent placement cost one residual.
  {
    const double rnorm0 = Norm(pool, r);
    if (rnorm0 / bnorm < options.rel_tolerance) {
      result.converged = true;
      result.residual_norm = rnorm0 / bnorm;
      record(result);
      return result;
    }
  }
  precond.Apply(r, &z, pool);
  p = z;
  double rz = Dot(pool, r, z);

  for (int it = 0; it < options.max_iters && rz > 0.0; ++it) {
    a.Multiply(p, &ap, pool);
    const double pap = Dot(pool, p, ap);
    if (pap <= 0.0) break;  // matrix not SPD or breakdown
    const double alpha = rz / pap;
    runtime::ParallelFor(pool, 0, ni, kAxpyGrain, [&](std::int64_t i) {
      const std::size_t u = static_cast<std::size_t>(i);
      (*x)[u] += alpha * p[u];
      r[u] -= alpha * ap[u];
    });
    result.iters = it + 1;
    const double rnorm = Norm(pool, r);
    if (rnorm / bnorm < options.rel_tolerance) {
      result.converged = true;
      result.residual_norm = rnorm / bnorm;
      record(result);
      return result;
    }
    precond.Apply(r, &z, pool);
    const double rz_new = Dot(pool, r, z);
    // A non-positive r'z means the preconditioner lost positive definiteness
    // (numerically); stop rather than diverge on a negative beta.
    if (!(rz_new > 0.0)) break;
    const double beta = rz_new / rz;
    rz = rz_new;
    runtime::ParallelFor(pool, 0, ni, kAxpyGrain, [&](std::int64_t i) {
      const std::size_t u = static_cast<std::size_t>(i);
      p[u] = z[u] + beta * p[u];
    });
  }
  result.residual_norm = Norm(pool, r) / bnorm;
  result.converged = result.residual_norm < options.rel_tolerance;
  record(result);
  return result;
}

}  // namespace

CgResult SolveCg(const CsrMatrix& a, const std::vector<double>& b,
                 std::vector<double>* x, const CgOptions& options) {
  const CgPreconditioner precond =
      CgPreconditioner::Build(a, options.preconditioner);
  return SolveImpl(a, precond, b, x, options);
}

CgResult SolveCgPreconditioned(const CsrMatrix& a,
                               const CgPreconditioner& precond,
                               const std::vector<double>& b,
                               std::vector<double>* x,
                               const CgOptions& options) {
  assert(!precond.empty());
  return SolveImpl(a, precond, b, x, options);
}

}  // namespace p3d::linalg
