#include "linalg/csr.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "runtime/parallel.h"

namespace p3d::linalg {
namespace {

// Rows per parallel chunk. Any value is determinism-safe (per-row outputs);
// this one keeps chunk dispatch overhead far below the row work for the
// FEA-sized matrices (tens of nonzeros per row).
constexpr std::int64_t kSpmvRowGrain = 256;

}  // namespace

CsrMatrix CsrMatrix::FromCoo(const CooBuilder& coo) {
  CsrMatrix m;
  m.n_ = coo.Dim();
  const std::size_t nnz_in = coo.NumTriplets();

  // Sort triplet indices by (row, col) so duplicates are adjacent.
  std::vector<std::uint32_t> order(nnz_in);
  std::iota(order.begin(), order.end(), 0u);
  const auto& rows = coo.rows();
  const auto& cols = coo.cols();
  const auto& vals = coo.vals();
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (rows[a] != rows[b]) return rows[a] < rows[b];
    return cols[a] < cols[b];
  });

  m.row_ptr_.assign(static_cast<std::size_t>(m.n_) + 1, 0);
  m.col_idx_.reserve(nnz_in);
  m.vals_.reserve(nnz_in);
  for (std::size_t i = 0; i < nnz_in;) {
    const std::int32_t r = rows[order[i]];
    const std::int32_t c = cols[order[i]];
    assert(r >= 0 && r < m.n_ && c >= 0 && c < m.n_);
    double sum = 0.0;
    while (i < nnz_in && rows[order[i]] == r && cols[order[i]] == c) {
      sum += vals[order[i]];
      ++i;
    }
    m.col_idx_.push_back(c);
    m.vals_.push_back(sum);
    m.row_ptr_[static_cast<std::size_t>(r) + 1] += 1;
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(m.n_); ++r) {
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  }
  return m;
}

void CsrMatrix::Multiply(const std::vector<double>& x, std::vector<double>* y,
                         runtime::ThreadPool* pool) const {
  assert(static_cast<std::int32_t>(x.size()) == n_);
  y->resize(static_cast<std::size_t>(n_));
  runtime::ParallelFor(pool, 0, n_, kSpmvRowGrain, [&](std::int64_t r) {
    double acc = 0.0;
    for (std::int32_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      acc += vals_[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
    }
    (*y)[static_cast<std::size_t>(r)] = acc;
  });
}

std::vector<double> CsrMatrix::Diagonal() const {
  std::vector<double> diag(static_cast<std::size_t>(n_), 0.0);
  for (std::int32_t r = 0; r < n_; ++r) {
    for (std::int32_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      if (col_idx_[static_cast<std::size_t>(k)] == r) {
        diag[static_cast<std::size_t>(r)] = vals_[static_cast<std::size_t>(k)];
        break;
      }
    }
  }
  return diag;
}

double CsrMatrix::At(std::int32_t row, std::int32_t col) const {
  for (std::int32_t k = row_ptr_[static_cast<std::size_t>(row)];
       k < row_ptr_[static_cast<std::size_t>(row) + 1]; ++k) {
    if (col_idx_[static_cast<std::size_t>(k)] == col) {
      return vals_[static_cast<std::size_t>(k)];
    }
  }
  return 0.0;
}

double CsrMatrix::SymmetryError() const {
  double err = 0.0;
  for (std::int32_t r = 0; r < n_; ++r) {
    for (std::int32_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      const std::int32_t c = col_idx_[static_cast<std::size_t>(k)];
      err = std::max(err, std::abs(vals_[static_cast<std::size_t>(k)] - At(c, r)));
    }
  }
  return err;
}

}  // namespace p3d::linalg
