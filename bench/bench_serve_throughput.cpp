// Serve-engine throughput harness.
//
// Runs one fixed alpha_ILV x alpha_TEMP sweep over ibm01 through
// serve::JobEngine at 1, 2, 4, and 8 workers and measures batch throughput
// (jobs/sec). Every job solves FEA over the same chip geometry, so the
// cross-job FeaContextCache should build the stiffness matrix + IC(0)
// factorization exactly once per engine and hit for every later job.
//
// Three gates ride on the output (scripts/check_bench_regression.py,
// baseline bench/baselines/serve_throughput.json):
//   * placements_identical — the engine's determinism contract. Every
//     worker count must reproduce the 1-worker per-job placements AND
//     per-job deterministic metric dumps to the byte; the harness exits
//     non-zero the moment any job drifts.
//   * cache_warm — the FEA-cache hit rate must be > 0 (the sweep shares one
//     geometry, so anything less means the cache key or sharing broke).
//   * scaling_ok — the throughput claim: on hosts with >= 4 hardware
//     threads, 4 workers must move >= 2x the jobs/sec of 1 worker; smaller
//     hosts pass vacuously (hw_threads records which case applied).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/batch.h"
#include "serve/job_engine.h"
#include "util/timer.h"

namespace {

struct JobSnapshot {
  std::string name;
  std::vector<double> x, y;
  std::vector<int> layer;
  std::string metrics_dump;
};

}  // namespace

int main() {
  p3d::bench::BenchSetup setup(
      "serve_throughput",
      "Serve engine: concurrent job throughput and FEA-cache sharing");

  const auto spec = p3d::bench::Ibm01();
  const p3d::netlist::Netlist nl = p3d::io::Generate(spec);

  p3d::serve::SweepSpec sweep;
  sweep.netlist = &nl;
  sweep.circuit = spec.name;
  sweep.circuit_scale = p3d::bench::Scale();
  sweep.base = p3d::bench::BaseParams();
  sweep.options.with_fea = true;
  if (p3d::bench::Fast()) {
    sweep.alpha_ilv = {1e-5, 5.2e-3};
    sweep.alpha_temp = {1e-6, 4.1e-5};
  } else {
    sweep.alpha_ilv = {5e-9, 1.3e-6, 1e-5, 5.2e-3};
    sweep.alpha_temp = {1e-7, 1e-6, 4.1e-5};
  }
  const std::size_t num_jobs =
      sweep.alpha_ilv.size() * sweep.alpha_temp.size();

  const int hw_threads = static_cast<int>(std::thread::hardware_concurrency());
  const std::vector<int> worker_counts = {1, 2, 4, 8};

  std::printf("%-8s %-8s %-10s %-12s %-8s %-8s %-10s\n", "workers", "jobs",
              "wall_s", "jobs_per_s", "hits", "misses", "identical");
  std::vector<JobSnapshot> reference;
  std::vector<double> wall_times;
  double speedup_4w = 0.0;
  double hit_rate_4w = 0.0;
  bool all_identical = true;
  for (const int workers : worker_counts) {
    p3d::serve::JobEngineOptions opts;
    opts.num_workers = workers;
    // Budget every job to one inner thread at EVERY worker count, so the
    // 1-worker reference runs the exact same per-job configuration the
    // concurrent runs do and the speedup isolates job-level parallelism.
    opts.thread_budget = 1;
    p3d::serve::JobEngine engine(opts);

    p3d::util::Timer timer;
    const auto points = p3d::serve::RunSweep(engine, sweep);
    const double wall_s = timer.Seconds();
    if (!points.ok()) {
      std::fprintf(stderr, "FAIL: sweep: %s\n",
                   points.status().ToString().c_str());
      return 1;
    }

    bool identical = true;
    for (std::size_t i = 0; i < points->size(); ++i) {
      const p3d::serve::SweepPoint& point = (*points)[i];
      if (point.result == nullptr || !point.result->status.ok()) {
        std::fprintf(stderr, "FAIL: job %s: %s\n", point.name.c_str(),
                     point.result == nullptr
                         ? "no result"
                         : point.result->status.ToString().c_str());
        return 1;
      }
      const auto& placement = point.result->placement.placement;
      if (workers == worker_counts.front()) {
        reference.push_back({point.name, placement.x, placement.y,
                             placement.layer,
                             point.result->metrics_dump});
      } else {
        const JobSnapshot& ref = reference[i];
        const bool same = point.name == ref.name && placement.x == ref.x &&
                          placement.y == ref.y &&
                          placement.layer == ref.layer &&
                          point.result->metrics_dump == ref.metrics_dump;
        identical = identical && same;
      }
    }
    all_identical = all_identical && identical;

    const auto stats = engine.GetStats();
    const long long lookups = stats.fea_cache.hits + stats.fea_cache.misses;
    const double hit_rate =
        lookups > 0 ? static_cast<double>(stats.fea_cache.hits) /
                          static_cast<double>(lookups)
                    : 0.0;
    const double jobs_per_sec =
        wall_s > 0.0 ? static_cast<double>(num_jobs) / wall_s : 0.0;
    wall_times.push_back(wall_s);
    if (workers == 4) {
      speedup_4w = wall_s > 0.0 ? wall_times.front() / wall_s : 0.0;
      hit_rate_4w = hit_rate;
    }
    std::printf("%-8d %-8zu %-10.3f %-12.2f %-8lld %-8lld %-10s\n", workers,
                num_jobs, wall_s, jobs_per_sec, stats.fea_cache.hits,
                stats.fea_cache.misses, identical ? "yes" : "NO");
    std::fflush(stdout);
    setup.Row({{"workers", workers},
               {"jobs", static_cast<long long>(num_jobs)},
               {"wall_s", wall_s},
               {"jobs_per_sec", jobs_per_sec},
               {"fea_cache_hits", stats.fea_cache.hits},
               {"fea_cache_misses", stats.fea_cache.misses},
               {"fea_cache_hit_rate", hit_rate},
               {"identical", identical}});
  }

  const bool cache_warm = hit_rate_4w > 0.0;
  // The >= 2x-at-4-workers acceptance only means something when the host
  // actually has 4 hardware threads to run on.
  const bool scaling_ok = hw_threads < 4 || speedup_4w >= 2.0;
  std::printf("\n# speedup at 4 workers: %.2fx (hw threads: %d)  "
              "fea cache hit rate: %.2f  placements %s\n",
              speedup_4w, hw_threads, hit_rate_4w,
              all_identical ? "byte-identical" : "DIFFER (BUG)");
  setup.Row({{"hw_threads", hw_threads},
             {"speedup_4w", speedup_4w},
             {"fea_cache_hit_rate_4w", hit_rate_4w},
             {"placements_identical", all_identical},
             {"cache_warm", cache_warm},
             {"scaling_ok", scaling_ok}});
  setup.recorder.Flush();

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: worker count changed per-job placement bytes\n");
    return 1;
  }
  if (!cache_warm) {
    std::fprintf(stderr, "FAIL: FEA cache never hit across the sweep\n");
    return 1;
  }
  return 0;
}
