// Figure 3 — Tradeoff between wirelength and interlayer via count.
//
// For every benchmark circuit, sweeps alpha_ILV with alpha_TEMP = 0 on a
// 4-layer stack and prints one (wirelength, ILV density per interlayer)
// point per coefficient — the full tradeoff curves of the paper's Figure 3.
// Expected shape: each curve is monotone (via density falls as wirelength
// rises), and larger circuits sit up-right of smaller ones.
//
// REPRO_BACKENDS=all repeats the sweep per global backend (bisection vs
// analytic) for a head-to-head curve comparison; default is bisection, the
// paper's engine.
#include "bench_common.h"

int main() {
  p3d::bench::BenchSetup setup(
      "fig3_tradeoff_curves",
      "Figure 3: WL vs interlayer-via-density tradeoff curves, ibm01-ibm18");
  const auto sweep = p3d::bench::IlvSweep();

  std::printf("%-10s %-8s %-12s %-12s %-14s %-10s\n", "backend", "circuit",
              "alpha_ilv", "hpwl_m", "ilv_density", "ilv");
  for (const p3d::place::GlobalBackend backend : p3d::bench::Backends()) {
    const char* bname = p3d::place::GlobalBackendName(backend);
    for (const auto& spec : p3d::bench::Circuits()) {
      const p3d::netlist::Netlist nl = p3d::io::Generate(spec);
      for (const double alpha : sweep) {
        p3d::place::PlacerParams params = p3d::bench::BaseParams();
        params.alpha_ilv = alpha;
        params.global_backend = backend;
        const auto r = p3d::bench::RunPlacer(nl, params, /*with_fea=*/false);
        std::printf("%-10s %-8s %-12.3g %-12.5g %-14.4g %-10lld\n", bname,
                    spec.name.c_str(), alpha, r.hpwl_m, r.ilv_density,
                    r.ilv_count);
        setup.Row({{"backend", bname},
                   {"circuit", spec.name},
                   {"alpha_ilv", alpha},
                   {"hpwl_m", r.hpwl_m},
                   {"ilv_density", r.ilv_density},
                   {"ilv", r.ilv_count}});
        std::fflush(stdout);
      }
    }
  }
  return 0;
}
