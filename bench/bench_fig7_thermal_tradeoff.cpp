// Figure 7 — Tradeoff between interlayer via count and wirelength as the
// thermal and interlayer-via coefficients are varied (ibm01).
//
// One (wirelength, via count) curve per alpha_TEMP value, each traced by the
// alpha_ILV sweep. Expected shape (paper Figure 7): increasing alpha_TEMP
// degrades the curves — they move up-right toward higher wirelengths and via
// counts, because thermal optimization spends wirelength and vias.
#include "bench_common.h"

int main() {
  p3d::bench::BenchSetup setup(
      "fig7_thermal_tradeoff",
      "Figure 7: ibm01 curves under thermal pressure");
  const p3d::netlist::Netlist nl = p3d::io::Generate(p3d::bench::Ibm01());

  const double temp_vals_all[] = {0.0, 2e-6, 2e-5, 2e-4};
  std::vector<double> ilv_vals;
  for (double a = 5e-8; a <= 1.7e-3; a *= (p3d::bench::Fast() ? 16.0 : 4.0)) {
    ilv_vals.push_back(a);
  }

  std::printf("%-12s %-12s %-12s %-10s\n", "alpha_temp", "alpha_ilv",
              "hpwl_m", "ilv");
  for (const double at : temp_vals_all) {
    for (const double ai : ilv_vals) {
      p3d::place::PlacerParams params = p3d::bench::BaseParams();
      params.alpha_ilv = ai;
      params.alpha_temp = at;
      const auto r = p3d::bench::RunPlacer(nl, params, false);
      std::printf("%-12.3g %-12.3g %-12.5g %-10lld\n", at, ai, r.hpwl_m,
                  r.ilv_count);
      setup.Row({{"alpha_temp", at},
                 {"alpha_ilv", ai},
                 {"hpwl_m", r.hpwl_m},
                 {"ilv", r.ilv_count}});
      std::fflush(stdout);
    }
  }
  return 0;
}
