// Micro-benchmarks (google-benchmark) for the performance-critical
// substrates: hypergraph bipartitioning, FEA thermal solves, incremental
// objective evaluation, cell shifting, synthetic generation, and the
// parallel-runtime scaling of multi-start partitioning and CG/SpMV
// (threads = 1/2/4/8; wall-clock speedup requires matching hardware cores).
#include <benchmark/benchmark.h>

#include "io/synthetic.h"
#include "linalg/cg.h"
#include "linalg/csr.h"
#include "obs/ring.h"
#include "partition/partitioner.h"
#include "place/objective.h"
#include "place/shift.h"
#include "thermal/fea.h"
#include "util/log.h"
#include "util/rng.h"

namespace {

using namespace p3d;

netlist::Netlist MakeCircuit(int cells, std::uint64_t seed = 1) {
  io::SyntheticSpec spec;
  spec.name = "bench";
  spec.num_cells = cells;
  spec.total_area_m2 = cells * 4.9e-12;
  spec.seed = seed;
  return io::Generate(spec);
}

void BM_SyntheticGenerate(benchmark::State& state) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const int cells = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeCircuit(cells));
  }
  state.SetItemsProcessed(state.iterations() * cells);
}
BENCHMARK(BM_SyntheticGenerate)->Arg(1000)->Arg(10000);

void BM_Bipartition(benchmark::State& state) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const int cells = static_cast<int>(state.range(0));
  const netlist::Netlist nl = MakeCircuit(cells);
  partition::Hypergraph hg;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    hg.AddVertex(nl.cell(c).Area());
  }
  std::vector<std::int32_t> verts;
  for (std::int32_t n = 0; n < nl.NumNets(); ++n) {
    verts.clear();
    for (const auto& pin : nl.NetPins(n)) verts.push_back(pin.cell);
    hg.AddNet(1.0, verts);
  }
  hg.Finalize();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    partition::PartitionOptions opt;
    opt.tolerance = 0.05;
    opt.seed = seed++;
    benchmark::DoNotOptimize(partition::Bipartition(hg, opt));
  }
  state.SetItemsProcessed(state.iterations() * cells);
}
BENCHMARK(BM_Bipartition)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

// Multi-start partitioning with the runtime fanning the 8 independent
// starts over N threads. The result is identical for every N (determinism
// contract); only the wall clock changes. Compare the per-thread-count rows
// for the scaling curve (>= 2x at 4 threads on >= 4 cores).
void BM_BipartitionMultiStart(benchmark::State& state) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const int threads = static_cast<int>(state.range(0));
  const netlist::Netlist nl = MakeCircuit(4000);
  partition::Hypergraph hg;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    hg.AddVertex(nl.cell(c).Area());
  }
  std::vector<std::int32_t> verts;
  for (std::int32_t n = 0; n < nl.NumNets(); ++n) {
    verts.clear();
    for (const auto& pin : nl.NetPins(n)) verts.push_back(pin.cell);
    hg.AddNet(1.0, verts);
  }
  hg.Finalize();
  partition::PartitionOptions opt;
  opt.tolerance = 0.05;
  opt.num_starts = 8;
  opt.threads = threads;
  opt.seed = 42;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::Bipartition(hg, opt));
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_BipartitionMultiStart)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// CG SpMV scaling on an FEA-shaped SPD system (3D 7-point Laplacian).
void BM_CgSolveThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::int32_t g = 48, gz = 16;
  const std::int32_t n = g * g * gz;
  linalg::CooBuilder coo(n);
  auto id = [&](std::int32_t x, std::int32_t y, std::int32_t z) {
    return x + g * (y + g * z);
  };
  for (std::int32_t z = 0; z < gz; ++z) {
    for (std::int32_t y = 0; y < g; ++y) {
      for (std::int32_t x = 0; x < g; ++x) {
        const std::int32_t i = id(x, y, z);
        coo.Add(i, i, 6.05);
        if (x > 0) coo.Add(i, i - 1, -1.0);
        if (x < g - 1) coo.Add(i, i + 1, -1.0);
        if (y > 0) coo.Add(i, id(x, y - 1, z), -1.0);
        if (y < g - 1) coo.Add(i, id(x, y + 1, z), -1.0);
        if (z > 0) coo.Add(i, id(x, y, z - 1), -1.0);
        if (z < gz - 1) coo.Add(i, id(x, y, z + 1), -1.0);
      }
    }
  }
  const linalg::CsrMatrix a = linalg::CsrMatrix::FromCoo(coo);
  std::vector<double> b(static_cast<std::size_t>(n));
  util::Rng rng(7);
  for (double& v : b) v = rng.NextDouble(-1.0, 1.0);
  linalg::CgOptions opt;
  opt.threads = threads;
  opt.max_iters = 200;
  opt.rel_tolerance = 1e-10;
  for (auto _ : state) {
    std::vector<double> x;
    benchmark::DoNotOptimize(linalg::SolveCg(a, b, &x, opt));
  }
  state.counters["threads"] = threads;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.NumNonZeros()));
}
BENCHMARK(BM_CgSolveThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_FeaSolve(benchmark::State& state) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const int n = static_cast<int>(state.range(0));
  thermal::ThermalStack stack;
  stack.num_layers = 4;
  const thermal::ChipExtent chip{1e-3, 1e-3};
  const thermal::FeaSolver fea(stack, chip, {.nx = n, .ny = n, .bulk_elems = 4});
  util::Rng rng(3);
  std::vector<double> x, y, p;
  std::vector<int> layer;
  for (int i = 0; i < 2000; ++i) {
    x.push_back(rng.NextDouble(0.0, chip.width));
    y.push_back(rng.NextDouble(0.0, chip.height));
    layer.push_back(rng.NextInt(0, 3));
    p.push_back(rng.NextDouble(0.0, 1e-5));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fea.Solve(x, y, layer, p));
  }
}
BENCHMARK(BM_FeaSolve)->Arg(16)->Arg(24)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_ObjectiveMoveDelta(benchmark::State& state) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const netlist::Netlist nl = MakeCircuit(5000);
  place::PlacerParams params;
  params.num_layers = 4;
  params.alpha_temp = 1e-6;
  params.SyncStack();
  const place::Chip chip = *place::Chip::Build(nl, 4, 0.05, 0.25);
  place::ObjectiveEvaluator eval(nl, chip, params);
  util::Rng rng(5);
  place::Placement p;
  p.Resize(static_cast<std::size_t>(nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = rng.NextDouble(0.0, chip.width());
    p.y[i] = rng.NextDouble(0.0, chip.height());
    p.layer[i] = rng.NextInt(0, 3);
  }
  eval.SetPlacement(p);
  std::int32_t c = 0;
  for (auto _ : state) {
    c = (c + 1) % nl.NumCells();
    benchmark::DoNotOptimize(
        eval.MoveDelta(c, rng.NextDouble(0.0, chip.width()),
                       rng.NextDouble(0.0, chip.height()), rng.NextInt(0, 3)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObjectiveMoveDelta);

// The always-on black box must be invisible next to real work: one record
// is a TLS lookup, a pow2 mask, and five relaxed stores. The Disabled
// variant measures the uninstalled path (one relaxed load).
void BM_RingRecord(benchmark::State& state) {
  obs::RingRecorder ring;
  obs::RingRecorder* previous = obs::InstallRingRecorder(&ring);
  std::int64_t i = 0;
  for (auto _ : state) {
    obs::RingNote("bench.note", i++);
  }
  obs::InstallRingRecorder(previous);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingRecord);

void BM_RingRecordDisabled(benchmark::State& state) {
  obs::RingRecorder* previous = obs::InstallRingRecorder(nullptr);
  std::int64_t i = 0;
  for (auto _ : state) {
    obs::RingNote("bench.note", i++);
  }
  obs::InstallRingRecorder(previous);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingRecordDisabled);

void BM_CellShiftIteration(benchmark::State& state) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const netlist::Netlist nl = MakeCircuit(3000);
  place::PlacerParams params;
  params.num_layers = 4;
  params.SyncStack();
  const place::Chip chip = *place::Chip::Build(nl, 4, 0.05, 0.25);
  for (auto _ : state) {
    state.PauseTiming();
    place::ObjectiveEvaluator eval(nl, chip, params);
    place::Placement p;
    p.Resize(static_cast<std::size_t>(nl.NumCells()));
    for (std::size_t i = 0; i < p.size(); ++i) {
      p.x[i] = chip.width() / 2;
      p.y[i] = chip.height() / 2;
      p.layer[i] = 1;
    }
    eval.SetPlacement(p);
    place::CellShifter shifter(eval);
    state.ResumeTiming();
    shifter.Run(5, 1.05);
  }
}
BENCHMARK(BM_CellShiftIteration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
