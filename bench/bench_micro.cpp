// Micro-benchmarks (google-benchmark) for the performance-critical
// substrates: hypergraph bipartitioning, FEA thermal solves, incremental
// objective evaluation, cell shifting, and synthetic generation.
#include <benchmark/benchmark.h>

#include "io/synthetic.h"
#include "partition/partitioner.h"
#include "place/objective.h"
#include "place/shift.h"
#include "thermal/fea.h"
#include "util/log.h"
#include "util/rng.h"

namespace {

using namespace p3d;

netlist::Netlist MakeCircuit(int cells, std::uint64_t seed = 1) {
  io::SyntheticSpec spec;
  spec.name = "bench";
  spec.num_cells = cells;
  spec.total_area_m2 = cells * 4.9e-12;
  spec.seed = seed;
  return io::Generate(spec);
}

void BM_SyntheticGenerate(benchmark::State& state) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const int cells = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeCircuit(cells));
  }
  state.SetItemsProcessed(state.iterations() * cells);
}
BENCHMARK(BM_SyntheticGenerate)->Arg(1000)->Arg(10000);

void BM_Bipartition(benchmark::State& state) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const int cells = static_cast<int>(state.range(0));
  const netlist::Netlist nl = MakeCircuit(cells);
  partition::Hypergraph hg;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    hg.AddVertex(nl.cell(c).Area());
  }
  std::vector<std::int32_t> verts;
  for (std::int32_t n = 0; n < nl.NumNets(); ++n) {
    verts.clear();
    for (const auto& pin : nl.NetPins(n)) verts.push_back(pin.cell);
    hg.AddNet(1.0, verts);
  }
  hg.Finalize();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    partition::PartitionOptions opt;
    opt.tolerance = 0.05;
    opt.seed = seed++;
    benchmark::DoNotOptimize(partition::Bipartition(hg, opt));
  }
  state.SetItemsProcessed(state.iterations() * cells);
}
BENCHMARK(BM_Bipartition)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_FeaSolve(benchmark::State& state) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const int n = static_cast<int>(state.range(0));
  thermal::ThermalStack stack;
  stack.num_layers = 4;
  const thermal::ChipExtent chip{1e-3, 1e-3};
  const thermal::FeaSolver fea(stack, chip, {.nx = n, .ny = n, .bulk_elems = 4});
  util::Rng rng(3);
  std::vector<double> x, y, p;
  std::vector<int> layer;
  for (int i = 0; i < 2000; ++i) {
    x.push_back(rng.NextDouble(0.0, chip.width));
    y.push_back(rng.NextDouble(0.0, chip.height));
    layer.push_back(rng.NextInt(0, 3));
    p.push_back(rng.NextDouble(0.0, 1e-5));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fea.Solve(x, y, layer, p));
  }
}
BENCHMARK(BM_FeaSolve)->Arg(16)->Arg(24)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_ObjectiveMoveDelta(benchmark::State& state) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const netlist::Netlist nl = MakeCircuit(5000);
  place::PlacerParams params;
  params.num_layers = 4;
  params.alpha_temp = 1e-6;
  params.SyncStack();
  const place::Chip chip = place::Chip::Build(nl, 4, 0.05, 0.25);
  place::ObjectiveEvaluator eval(nl, chip, params);
  util::Rng rng(5);
  place::Placement p;
  p.Resize(static_cast<std::size_t>(nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = rng.NextDouble(0.0, chip.width());
    p.y[i] = rng.NextDouble(0.0, chip.height());
    p.layer[i] = rng.NextInt(0, 3);
  }
  eval.SetPlacement(p);
  std::int32_t c = 0;
  for (auto _ : state) {
    c = (c + 1) % nl.NumCells();
    benchmark::DoNotOptimize(
        eval.MoveDelta(c, rng.NextDouble(0.0, chip.width()),
                       rng.NextDouble(0.0, chip.height()), rng.NextInt(0, 3)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObjectiveMoveDelta);

void BM_CellShiftIteration(benchmark::State& state) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const netlist::Netlist nl = MakeCircuit(3000);
  place::PlacerParams params;
  params.num_layers = 4;
  params.SyncStack();
  const place::Chip chip = place::Chip::Build(nl, 4, 0.05, 0.25);
  for (auto _ : state) {
    state.PauseTiming();
    place::ObjectiveEvaluator eval(nl, chip, params);
    place::Placement p;
    p.Resize(static_cast<std::size_t>(nl.NumCells()));
    for (std::size_t i = 0; i < p.size(); ++i) {
      p.x[i] = chip.width() / 2;
      p.y[i] = chip.height() / 2;
      p.layer[i] = 1;
    }
    eval.SetPlacement(p);
    place::CellShifter shifter(eval);
    state.ResumeTiming();
    shifter.Run(5, 1.05);
  }
}
BENCHMARK(BM_CellShiftIteration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
