// Figure 4 — Average wirelength vs ILV tradeoff for ibm01-ibm18.
//
// For each alpha_ILV, averages the interlayer-via density and the percent
// change of wirelength (relative to the min-wirelength end of the sweep)
// over all circuits. Reproduces the paper's headline: "Wirelength
// reductions within 2% of the maximum can be achieved using 46% fewer
// interlayer vias" — the harness computes the same statistic from its data.
//
// REPRO_BACKENDS=all repeats the sweep (and the headline) per global
// backend; default is bisection, the paper's engine.
#include <vector>

#include "bench_common.h"
#include "util/stats.h"

int main() {
  p3d::bench::BenchSetup setup("fig4_avg_tradeoff",
                               "Figure 4: average WL vs ILV tradeoff");
  const auto sweep = p3d::bench::IlvSweep();
  const auto circuits = p3d::bench::Circuits();

  for (const p3d::place::GlobalBackend backend : p3d::bench::Backends()) {
    const char* bname = p3d::place::GlobalBackendName(backend);

    // wl[c][k], density[c][k] over circuits c and sweep points k.
    std::vector<std::vector<double>> wl(circuits.size());
    std::vector<std::vector<double>> density(circuits.size());
    for (std::size_t c = 0; c < circuits.size(); ++c) {
      const p3d::netlist::Netlist nl = p3d::io::Generate(circuits[c]);
      for (const double alpha : sweep) {
        p3d::place::PlacerParams params = p3d::bench::BaseParams();
        params.alpha_ilv = alpha;
        params.global_backend = backend;
        const auto r = p3d::bench::RunPlacer(nl, params, false);
        wl[c].push_back(r.hpwl_m);
        density[c].push_back(r.ilv_density);
      }
    }

    std::printf("%-10s %-12s %-16s %-18s\n", "backend", "alpha_ilv",
                "avg_ilv_density", "avg_pct_wl_change");
    std::vector<double> avg_density(sweep.size(), 0.0);
    std::vector<double> avg_pct_wl(sweep.size(), 0.0);
    for (std::size_t k = 0; k < sweep.size(); ++k) {
      for (std::size_t c = 0; c < circuits.size(); ++c) {
        // Percent change relative to the shortest wirelength this circuit
        // achieves anywhere in the sweep (the "maximum wirelength
        // reduction").
        double wl_min = wl[c][0];
        for (const double v : wl[c]) wl_min = std::min(wl_min, v);
        avg_density[k] += density[c][k] / static_cast<double>(circuits.size());
        avg_pct_wl[k] += 100.0 * (wl[c][k] - wl_min) / wl_min /
                         static_cast<double>(circuits.size());
      }
      std::printf("%-10s %-12.3g %-16.4g %-18.2f\n", bname, sweep[k],
                  avg_density[k], avg_pct_wl[k]);
      setup.Row({{"backend", bname},
                 {"alpha_ilv", sweep[k]},
                 {"avg_ilv_density", avg_density[k]},
                 {"avg_pct_wl_change", avg_pct_wl[k]}});
    }

    // Headline statistic: largest via saving while staying within 2% of the
    // maximum wirelength reduction.
    const double dens_max = avg_density[0];  // cheapest vias = most vias
    double best_saving = 0.0;
    for (std::size_t k = 0; k < sweep.size(); ++k) {
      if (avg_pct_wl[k] <= 2.0) {
        best_saving = std::max(
            best_saving, 100.0 * (dens_max - avg_density[k]) / dens_max);
      }
    }
    std::printf("\n# headline (%s): %.0f%% fewer interlayer vias within 2%% "
                "of the maximum wirelength reduction (paper: 46%%)\n",
                bname, best_saving);
    setup.Row({{"backend", bname}, {"headline_via_saving_pct", best_saving}});
  }
  return 0;
}
