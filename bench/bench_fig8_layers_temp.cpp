// Figure 8 — Percent reduction in ibm01's average temperature vs the thermal
// coefficient, for 1, 2, 4, 6, and 8 layers (alpha_ILV = 1e-5).
//
// Each row sweeps alpha_TEMP; the value is the percent reduction of the FEA
// average temperature relative to the alpha_TEMP = 0 baseline of the same
// layer count. Expected shape (paper Figure 8): meaningful reductions for
// every layer count — the method "is effective in reducing temperatures for
// 2D ICs (1 layer) as well as 3D ICs with many layers".
#include "bench_common.h"

int main() {
  p3d::bench::BenchSetup setup(
      "fig8_layers_temp", "Figure 8: avg temperature reduction vs layers");
  const p3d::netlist::Netlist nl = p3d::io::Generate(p3d::bench::Ibm01());
  const int layer_counts[] = {1, 2, 4, 6, 8};
  const auto temp_vals = p3d::bench::TempSweep(1e-8, 5.2e-3);

  std::printf("%-12s", "aT\\layers");
  for (const int l : layer_counts) std::printf("%-10d", l);
  std::printf("\n");

  double baseline[5] = {0, 0, 0, 0, 0};
  for (int li = 0; li < 5; ++li) {
    p3d::place::PlacerParams params = p3d::bench::BaseParams(layer_counts[li]);
    baseline[li] = p3d::bench::RunPlacer(nl, params, true).avg_temp_c;
  }

  for (const double at : temp_vals) {
    std::printf("%-12.2g", at);
    for (int li = 0; li < 5; ++li) {
      p3d::place::PlacerParams params = p3d::bench::BaseParams(layer_counts[li]);
      params.alpha_temp = at;
      const auto r = p3d::bench::RunPlacer(nl, params, true);
      const double reduction =
          100.0 * (baseline[li] - r.avg_temp_c) / baseline[li];
      std::printf("%-10.1f", reduction);
      setup.Row({{"layers", layer_counts[li]},
                 {"alpha_temp", at},
                 {"avg_temp_c", r.avg_temp_c},
                 {"reduction_pct", reduction}});
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n# values: %% reduction of avg temperature vs alpha_TEMP=0 "
              "baseline of the same layer count (paper peaks ~20-30%%)\n");
  return 0;
}
