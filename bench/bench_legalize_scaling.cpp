// Coarse-legalization thread-scaling harness.
//
// Measures the windowed parallel schedule of the coarse-legalization move
// engines (moveswap + cell shifting, DESIGN.md §5): the largest configured
// circuit is globally placed once, then the full coarse phase (global +
// local move/swap rounds followed by cell shifting) is re-run from that
// identical snapshot at 1, 2, 4, and 8 legalization threads.
//
// Two gates ride on the output (scripts/check_bench_regression.py, baseline
// bench/baselines/legalize_scaling.json):
//   * placements_identical — the determinism contract. Every thread count
//     must produce the thread=1 placement TO THE BYTE; this harness exits
//     non-zero the moment any run drifts.
//   * scaling_ok — the throughput claim. On hosts with >= 8 hardware
//     threads the 8-thread coarse phase must be >= 3x faster than serial;
//     hosts with fewer hardware threads cannot measure that and pass
//     vacuously (the boolean records which case applied via hw_threads).
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "place/chip.h"
#include "place/global.h"
#include "place/moveswap.h"
#include "place/shift.h"
#include "util/timer.h"

int main() {
  p3d::bench::BenchSetup setup(
      "legalize_scaling",
      "Coarse legalization: windowed parallel schedule thread scaling");

  const auto spec = p3d::bench::Circuits().back();
  const p3d::netlist::Netlist nl = p3d::io::Generate(spec);
  p3d::place::PlacerParams params = p3d::bench::BaseParams();
  params.SyncStack();
  const auto chip = p3d::place::Chip::Build(
      nl, params.num_layers, params.whitespace, params.inter_row_space);
  if (!chip.ok()) {
    std::fprintf(stderr, "FAIL: chip build: %s\n",
                 chip.status().message().c_str());
    return 1;
  }

  // One global placement produces the realistic over-dense coarse input; all
  // timed runs start from this identical snapshot.
  p3d::place::Placement coarse_input;
  {
    p3d::place::ObjectiveEvaluator eval(nl, *chip, params);
    p3d::place::GlobalPlacer global(eval);
    p3d::place::Placement initial;
    initial.Resize(static_cast<std::size_t>(nl.NumCells()));
    coarse_input = *global.Run(initial);
  }

  const int hw_threads = static_cast<int>(std::thread::hardware_concurrency());
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  std::printf("%-8s %-10s %-10s %-12s %-10s\n", "circuit", "cells", "threads",
              "coarse_s", "identical");
  std::vector<double> times;
  p3d::place::Placement reference;
  bool all_identical = true;
  for (const int threads : thread_counts) {
    p3d::place::PlacerParams run_params = params;
    run_params.legalize_threads = threads;
    p3d::place::ObjectiveEvaluator eval(nl, *chip, run_params);
    eval.SetPlacement(coarse_input);
    // Same engine seeds as Placer3D::Run, so the pass sequence matches the
    // production coarse phase.
    p3d::place::MoveSwapOptimizer mso(eval,
                                      run_params.seed ^ 0xabcdef12345ULL);
    p3d::place::CellShifter shifter(eval);

    p3d::util::Timer timer;
    for (int i = 0; i < std::max(run_params.moveswap_rounds, 1); ++i) {
      mso.RunGlobal(run_params.target_region_bins);
      mso.RunLocal();
    }
    shifter.Run(run_params.shift_max_iters, run_params.shift_target_density);
    const double seconds = timer.Seconds();
    times.push_back(seconds);

    bool identical = true;
    if (threads == thread_counts.front()) {
      reference = eval.placement();
    } else {
      identical = eval.placement().x == reference.x &&
                  eval.placement().y == reference.y &&
                  eval.placement().layer == reference.layer;
      all_identical = all_identical && identical;
    }
    std::printf("%-8s %-10d %-10d %-12.3f %-10s\n", spec.name.c_str(),
                nl.NumCells(), threads, seconds, identical ? "yes" : "NO");
    std::fflush(stdout);
    setup.Row({{"circuit", spec.name},
               {"cells", nl.NumCells()},
               {"threads", threads},
               {"coarse_s", seconds},
               {"identical", identical}});
  }

  const double speedup_8t =
      times.back() > 0.0 ? times.front() / times.back() : 0.0;
  // The >= 3x-at-8-threads acceptance only means something when the host
  // actually has 8 hardware threads to run on.
  const bool scaling_ok = hw_threads < 8 || speedup_8t >= 3.0;
  std::printf("\n# coarse speedup at 8 threads: %.2fx (hw threads: %d)  "
              "placements %s\n",
              speedup_8t, hw_threads,
              all_identical ? "byte-identical" : "DIFFER (BUG)");
  setup.Row({{"hw_threads", hw_threads},
             {"coarse_speedup_8t", speedup_8t},
             {"placements_identical", all_identical},
             {"scaling_ok", scaling_ok}});
  setup.recorder.Flush();

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: legalization threads changed the placement bytes\n");
    return 1;
  }
  return 0;
}
