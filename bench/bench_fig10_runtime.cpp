// Figure 10 — Runtime analysis of the placement method.
//
// Part 1 places every benchmark circuit with and without thermal
// optimization and prints runtime vs cell count, plus the power-law fit
// t = a * n^b. Expected shape (paper Figure 10): nearly linear scaling (the
// paper fits t = 2e-4 * n^1.19); thermal placement costs a modest constant
// factor.
//
// Part 2 measures the solver reuse layer on the per-phase FEA flow: the
// same placement run once with one-shot solves (fresh assembly + Jacobi
// preconditioner + cold start per solve — the pre-cache behavior) and once
// through the cached FeaContext (assembly + IC(0) factor built once, CG
// warm-started), both at the same CG tolerance. Caching must only buy time:
// the run exits non-zero if the two placements differ by a byte. The
// cumulative FEA solve-time ratio is the row the CI regression gate watches
// (scripts/check_bench_regression.py, baseline in bench/baselines/).
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "util/stats.h"

namespace {

/// Cumulative-FEA-time comparison on one circuit; returns false if the
/// cached and uncached placements are not byte-identical.
bool SolverCacheSection(p3d::bench::BenchSetup& setup) {
  const auto spec = p3d::bench::Ibm01();
  const p3d::netlist::Netlist nl = p3d::io::Generate(spec);
  p3d::place::PlacerParams params = p3d::bench::BaseParams();
  params.alpha_temp = 5e-6;

  p3d::place::RunOptions off;
  off.with_fea = true;
  off.fea_per_phase = true;
  off.use_solver_cache = false;
  off.preconditioner = p3d::linalg::PreconditionerKind::kJacobi;

  p3d::place::RunOptions on = off;
  on.use_solver_cache = true;
  on.warm_start = true;
  on.preconditioner = p3d::linalg::PreconditionerKind::kIc0;

  p3d::place::Placer3D p_off(nl, params);
  const p3d::place::PlacementResult r_off = *p_off.Run(off);
  p3d::place::Placer3D p_on(nl, params);
  const p3d::place::PlacementResult r_on = *p_on.Run(on);

  const bool identical = r_off.placement.x == r_on.placement.x &&
                         r_off.placement.y == r_on.placement.y &&
                         r_off.placement.layer == r_on.placement.layer;
  const double speedup =
      r_on.t_fea > 0.0 ? r_off.t_fea / r_on.t_fea : 0.0;

  std::printf("\n# solver cache (%s, %d cells, %lld FEA solves per run)\n",
              spec.name.c_str(), nl.NumCells(), r_on.fea_solves);
  std::printf("#   one-shot : %.3fs fea, %lld cg iters\n", r_off.t_fea,
              r_off.fea_cg_iters);
  std::printf("#   cached   : %.3fs fea, %lld cg iters\n", r_on.t_fea,
              r_on.fea_cg_iters);
  std::printf("#   speedup  : %.2fx   placements %s\n", speedup,
              identical ? "byte-identical" : "DIFFER (BUG)");
  setup.Row({{"circuit", spec.name},
             {"fea_solves", r_on.fea_solves},
             {"fea_oneshot_s", r_off.t_fea},
             {"fea_oneshot_iters", r_off.fea_cg_iters},
             {"fea_cached_s", r_on.t_fea},
             {"fea_cached_iters", r_on.fea_cg_iters},
             {"fea_speedup", speedup},
             {"placements_identical", identical}});
  return identical;
}

}  // namespace

int main() {
  p3d::bench::BenchSetup setup("fig10_runtime",
                               "Figure 10: runtime vs number of cells");

  std::printf("%-8s %-10s %-14s %-14s\n", "circuit", "cells", "regular_s",
              "thermal_s");
  std::vector<double> cells, t_reg, t_therm;
  for (const auto& spec : p3d::bench::Circuits()) {
    const p3d::netlist::Netlist nl = p3d::io::Generate(spec);

    p3d::place::PlacerParams regular = p3d::bench::BaseParams();
    const auto rr = p3d::bench::RunPlacer(nl, regular, false);

    p3d::place::PlacerParams thermal = p3d::bench::BaseParams();
    thermal.alpha_temp = 5e-6;
    const auto rt = p3d::bench::RunPlacer(nl, thermal, false);

    std::printf("%-8s %-10d %-14.2f %-14.2f\n", spec.name.c_str(),
                nl.NumCells(), rr.t_total, rt.t_total);
    setup.Row({{"circuit", spec.name},
               {"cells", nl.NumCells()},
               {"regular_s", rr.t_total},
               {"thermal_s", rt.t_total}});
    std::fflush(stdout);
    cells.push_back(nl.NumCells());
    t_reg.push_back(std::max(rr.t_total, 1e-3));
    t_therm.push_back(std::max(rt.t_total, 1e-3));
  }

  const auto fit_r = p3d::util::FitPowerLaw(cells, t_reg);
  const auto fit_t = p3d::util::FitPowerLaw(cells, t_therm);
  std::printf("\n# fit regular: t = %.3g * n^%.2f   thermal: t = %.3g * n^%.2f"
              "   (paper: t = 2e-4 * n^1.19)\n",
              fit_r.a, fit_r.b, fit_t.a, fit_t.b);
  setup.Row({{"fit_regular_a", fit_r.a},
             {"fit_regular_b", fit_r.b},
             {"fit_thermal_a", fit_t.a},
             {"fit_thermal_b", fit_t.b}});

  if (!SolverCacheSection(setup)) {
    std::fprintf(stderr, "FAIL: solver cache changed the placement bytes\n");
    return 1;
  }
  return 0;
}
