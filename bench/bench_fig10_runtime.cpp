// Figure 10 — Runtime analysis of the placement method.
//
// Places every benchmark circuit with and without thermal optimization and
// prints runtime vs cell count, plus the power-law fit t = a * n^b. Expected
// shape (paper Figure 10): nearly linear scaling (the paper fits
// t = 2e-4 * n^1.19); thermal placement costs a modest constant factor.
#include <vector>

#include "bench_common.h"
#include "util/stats.h"

int main() {
  p3d::bench::BenchSetup setup("fig10_runtime",
                               "Figure 10: runtime vs number of cells");

  std::printf("%-8s %-10s %-14s %-14s\n", "circuit", "cells", "regular_s",
              "thermal_s");
  std::vector<double> cells, t_reg, t_therm;
  for (const auto& spec : p3d::bench::Circuits()) {
    const p3d::netlist::Netlist nl = p3d::io::Generate(spec);

    p3d::place::PlacerParams regular = p3d::bench::BaseParams();
    const auto rr = p3d::bench::RunPlacer(nl, regular, false);

    p3d::place::PlacerParams thermal = p3d::bench::BaseParams();
    thermal.alpha_temp = 5e-6;
    const auto rt = p3d::bench::RunPlacer(nl, thermal, false);

    std::printf("%-8s %-10d %-14.2f %-14.2f\n", spec.name.c_str(),
                nl.NumCells(), rr.t_total, rt.t_total);
    setup.Row({{"circuit", spec.name},
               {"cells", nl.NumCells()},
               {"regular_s", rr.t_total},
               {"thermal_s", rt.t_total}});
    std::fflush(stdout);
    cells.push_back(nl.NumCells());
    t_reg.push_back(std::max(rr.t_total, 1e-3));
    t_therm.push_back(std::max(rt.t_total, 1e-3));
  }

  const auto fit_r = p3d::util::FitPowerLaw(cells, t_reg);
  const auto fit_t = p3d::util::FitPowerLaw(cells, t_therm);
  std::printf("\n# fit regular: t = %.3g * n^%.2f   thermal: t = %.3g * n^%.2f"
              "   (paper: t = 2e-4 * n^1.19)\n",
              fit_r.a, fit_r.b, fit_t.a, fit_t.b);
  setup.Row({{"fit_regular_a", fit_r.a},
             {"fit_regular_b", fit_r.b},
             {"fit_thermal_a", fit_t.a},
             {"fit_thermal_b", fit_t.b}});
  return 0;
}
