// Figure 6 — Average temperature of ibm01 as the thermal and interlayer-via
// coefficients are varied.
//
// A 2D sweep over (alpha_TEMP, alpha_ILV); each cell of the printed matrix
// is the FEA average cell temperature. Expected shape (paper Figure 6):
// temperature falls as alpha_TEMP grows, and rises as alpha_ILV shrinks
// (cheap vias mean more vias, whose capacitance burns power).
#include "bench_common.h"

int main() {
  p3d::bench::BenchSetup setup("fig6_temp_surface",
                               "Figure 6: ibm01 average temperature surface");
  const p3d::netlist::Netlist nl = p3d::io::Generate(p3d::bench::Ibm01());

  // Paper ranges: alpha_ILV 5e-8..1.6e-3 (x4 steps), alpha_TEMP 1e-8..1.3e-3.
  std::vector<double> ilv_vals;
  for (double a = 5e-8; a <= 1.7e-3; a *= (p3d::bench::Fast() ? 16.0 : 4.0)) {
    ilv_vals.push_back(a);
  }
  const auto temp_vals =
      p3d::bench::TempSweep(1e-8, p3d::bench::Fast() ? 1.4e-3 : 1.3e-3);

  std::printf("%-12s", "aT\\aILV");
  for (const double ai : ilv_vals) std::printf("%-10.2g", ai);
  std::printf("\n");
  for (const double at : temp_vals) {
    std::printf("%-12.2g", at);
    for (const double ai : ilv_vals) {
      p3d::place::PlacerParams params = p3d::bench::BaseParams();
      params.alpha_ilv = ai;
      params.alpha_temp = at;
      const auto r = p3d::bench::RunPlacer(nl, params, /*with_fea=*/true);
      std::printf("%-10.3f", r.avg_temp_c);
      setup.Row({{"alpha_temp", at},
                 {"alpha_ilv", ai},
                 {"avg_temp_c", r.avg_temp_c}});
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n# rows: alpha_TEMP, columns: alpha_ILV, values: avg temp "
              "(C above ambient)\n");
  return 0;
}
