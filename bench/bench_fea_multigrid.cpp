// Cumulative FEA cost of per-pass thermal: the cached multigrid path vs
// the one-shot solve sequence it replaces, with IC(0) as the temperature
// reference.
//
// Models the per-pass thermal loop the multigrid work enables: K
// power/position perturbation steps (placement-like drift, deterministic
// LCG), each evaluated by four solver setups at the same relative
// tolerance:
//
//   oneshot — FeaSolver::Solve per step: fresh Jacobi preconditioner and a
//             cold start every call. This is what evaluating thermal every
//             legalization pass would have cost before the FeaContext +
//             multigrid work, and the baseline the headline speedup is
//             measured against.
//   ic0     — FeaContext (cached assembly, warm starts), IC(0)-PCG. The
//             temperature reference the multigrid paths must match.
//   mg_pcg  — FeaContext, CG preconditioned by multigrid V-cycles.
//   mg      — FeaContext, standalone multigrid V-cycle iteration.
//
// Reports cumulative FEA seconds and iteration counts per setup plus the
// headline fea_mg_speedup = oneshot / mg_pcg, and verifies both multigrid
// paths reproduce the IC(0) max/avg cell temperatures step by step —
// exiting non-zero on disagreement, so the CI bench-smoke lane gates
// correctness along with the fea_mg_speedup regression check
// (bench/baselines/fea_multigrid.json).
//
// Tier: scale1-equivalent mesh (96x96 lateral, 4 tiers) by default;
// REPRO_FAST drops to 48x48 and fewer steps for the smoke lane.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "linalg/cg.h"
#include "thermal/fea.h"
#include "thermal/stack.h"

namespace {

using p3d::thermal::ChipExtent;
using p3d::thermal::FeaContext;
using p3d::thermal::FeaContextOptions;
using p3d::thermal::FeaResult;
using p3d::thermal::FeaSolver;
using p3d::thermal::FeaSolverKind;
using p3d::thermal::ThermalStack;

// Deterministic LCG (same constants as the synthetic netlist generator).
std::uint64_t Next(std::uint64_t* state) {
  *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
  return *state >> 33;
}

double Uniform(std::uint64_t* state) {
  return static_cast<double>(Next(state) & 0xffffff) / 16777216.0;
}

struct Workload {
  std::vector<double> x, y, power;
  std::vector<int> layer;

  /// Placement-like drift: the same base layout every step, positions and
  /// powers nudged a few percent by a step-seeded stream — so consecutive
  /// solves resemble consecutive legalization passes and every solver setup
  /// sees identical inputs.
  static Workload Step(int cells, int layers, const ChipExtent& chip,
                       int step) {
    Workload w;
    std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
    std::uint64_t drift = 1234567ULL + static_cast<std::uint64_t>(step);
    w.x.reserve(static_cast<std::size_t>(cells));
    w.y.reserve(static_cast<std::size_t>(cells));
    w.layer.reserve(static_cast<std::size_t>(cells));
    w.power.reserve(static_cast<std::size_t>(cells));
    for (int c = 0; c < cells; ++c) {
      const double bx = Uniform(&rng) * chip.width;
      const double by = Uniform(&rng) * chip.height;
      const double jx = (Uniform(&drift) - 0.5) * 0.04 * chip.width;
      const double jy = (Uniform(&drift) - 0.5) * 0.04 * chip.height;
      w.x.push_back(std::min(chip.width, std::max(0.0, bx + jx)));
      w.y.push_back(std::min(chip.height, std::max(0.0, by + jy)));
      w.layer.push_back(static_cast<int>(Next(&rng)) % layers);
      const double base = 0.4e-3 + 1.2e-3 * Uniform(&rng);
      w.power.push_back(base * (0.9 + 0.2 * Uniform(&drift)));
    }
    return w;
  }
};

struct SetupRun {
  const char* name;
  double seconds = 0.0;
  long long iters = 0;
  long long warm_starts = 0;
  long long nonconverged = 0;
  std::vector<double> max_temp;  // per step
  std::vector<double> avg_temp;
};

SetupRun RunContext(const char* name, const FeaContextOptions& opt,
                    const ThermalStack& stack, const ChipExtent& chip,
                    int cells, int steps) {
  SetupRun run;
  run.name = name;
  FeaContext ctx(stack, chip, opt);
  for (int s = 0; s < steps; ++s) {
    const Workload w = Workload::Step(cells, stack.num_layers, chip, s);
    const FeaResult r = ctx.Solve(w.x, w.y, w.layer, w.power);
    run.max_temp.push_back(r.max_cell_temp);
    run.avg_temp.push_back(r.avg_cell_temp);
  }
  run.seconds = ctx.stats().solve_seconds;
  run.iters = ctx.stats().iters_total;
  run.warm_starts = ctx.stats().warm_starts;
  run.nonconverged = ctx.stats().nonconverged;
  return run;
}

SetupRun RunOneshot(const FeaContextOptions& opt, const ThermalStack& stack,
                    const ChipExtent& chip, int cells, int steps) {
  SetupRun run;
  run.name = "oneshot";
  const FeaSolver solver(stack, chip, opt.fea);
  for (int s = 0; s < steps; ++s) {
    const Workload w = Workload::Step(cells, stack.num_layers, chip, s);
    const auto t0 = std::chrono::steady_clock::now();
    const FeaResult r = solver.Solve(w.x, w.y, w.layer, w.power);
    run.seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    run.iters += r.cg_iters;
    if (!r.converged) ++run.nonconverged;
    run.max_temp.push_back(r.max_cell_temp);
    run.avg_temp.push_back(r.avg_cell_temp);
  }
  return run;
}

/// Step-wise temperature agreement against the reference setup: 1e-3 deg C
/// absolute or 1e-4 relative, whichever is larger (all solves run to the
/// same 1e-8 relative residual, so real disagreement means a solver bug,
/// not roundoff).
bool Agrees(const SetupRun& ref, const SetupRun& got) {
  if (ref.max_temp.size() != got.max_temp.size()) return false;
  for (std::size_t s = 0; s < ref.max_temp.size(); ++s) {
    const double tol_max = std::max(1e-3, 1e-4 * std::abs(ref.max_temp[s]));
    const double tol_avg = std::max(1e-3, 1e-4 * std::abs(ref.avg_temp[s]));
    if (std::abs(ref.max_temp[s] - got.max_temp[s]) > tol_max) return false;
    if (std::abs(ref.avg_temp[s] - got.avg_temp[s]) > tol_avg) return false;
  }
  return true;
}

}  // namespace

int main() {
  p3d::bench::BenchSetup setup("fea_multigrid",
                               "Per-pass FEA cost: multigrid vs one-shot");
  const bool fast = p3d::bench::Fast();

  ThermalStack stack;
  stack.num_layers = 4;
  const ChipExtent chip{1e-2, 1e-2};  // 1 cm^2 die (scale1 tier)

  FeaContextOptions base;
  base.fea.nx = fast ? 48 : 96;
  base.fea.ny = base.fea.nx;
  base.fea.cg.rel_tolerance = 1e-8;
  const int cells = fast ? 8000 : 20000;
  const int steps = fast ? 6 : 12;

  FeaContextOptions ic0 = base;
  ic0.fea.cg.preconditioner = p3d::linalg::PreconditionerKind::kIc0;

  FeaContextOptions mg_pcg = base;
  mg_pcg.fea.cg.preconditioner = p3d::linalg::PreconditionerKind::kMultigrid;

  FeaContextOptions mg = base;
  mg.fea.solver = FeaSolverKind::kMultigrid;

  std::printf("# mesh %dx%d, %d tiers, %d cells, %d steps, tol %.0e\n",
              base.fea.nx, base.fea.ny, stack.num_layers, cells, steps,
              base.fea.cg.rel_tolerance);
  std::printf("%-10s %10s %8s %6s %8s %10s\n", "setup", "fea_sec", "iters",
              "warm", "noncvg", "max_temp");

  const SetupRun runs[] = {
      RunOneshot(base, stack, chip, cells, steps),
      RunContext("ic0", ic0, stack, chip, cells, steps),
      RunContext("mg_pcg", mg_pcg, stack, chip, cells, steps),
      RunContext("mg", mg, stack, chip, cells, steps),
  };
  for (const SetupRun& r : runs) {
    std::printf("%-10s %10.3f %8lld %6lld %8lld %10.3f\n", r.name, r.seconds,
                r.iters, r.warm_starts, r.nonconverged, r.max_temp.back());
    setup.Row({{"setup", r.name},
               {"fea_seconds", r.seconds},
               {"iters_total", r.iters},
               {"warm_starts", r.warm_starts},
               {"nonconverged", r.nonconverged},
               {"max_temp_last", r.max_temp.back()},
               {"avg_temp_last", r.avg_temp.back()}});
  }

  const SetupRun& oneshot = runs[0];
  const SetupRun& ref = runs[1];
  const SetupRun& pcg = runs[2];
  const SetupRun& vcyc = runs[3];
  const bool temps_agree = Agrees(ref, pcg) && Agrees(ref, vcyc) &&
                           Agrees(ref, oneshot);
  const bool all_converged =
      oneshot.nonconverged == 0 && ref.nonconverged == 0 &&
      pcg.nonconverged == 0 && vcyc.nonconverged == 0;
  const auto speedup = [&](const SetupRun& r) {
    return r.seconds > 0.0 ? oneshot.seconds / r.seconds : 0.0;
  };

  std::printf("fea_mg_speedup: %.2fx  fea_mg_standalone_speedup: %.2fx  "
              "fea_ic0_speedup: %.2fx  temps_agree: %s\n",
              speedup(pcg), speedup(vcyc), speedup(ref),
              temps_agree ? "yes" : "NO");
  setup.Row({{"fea_mg_speedup", speedup(pcg)},
             {"fea_mg_standalone_speedup", speedup(vcyc)},
             {"fea_ic0_speedup", speedup(ref)},
             {"mg_pcg_iters_per_solve",
              static_cast<double>(pcg.iters) / steps},
             {"ic0_iters_per_solve", static_cast<double>(ref.iters) / steps},
             {"temps_agree", temps_agree},
             {"all_converged", all_converged}});
  setup.recorder.Flush();

  if (!temps_agree || !all_converged) {
    std::fprintf(stderr, "bench_fea_multigrid: FAIL: %s\n",
                 !temps_agree
                     ? "multigrid temperatures disagree with IC(0)"
                     : "solver(s) hit the iteration cap");
    return 1;
  }
  return 0;
}
