// Global-placement backend comparison harness.
//
// Runs the full placement flow once per GlobalPlacerBackend (bisection and
// analytic, DESIGN.md §2) on the same circuit and compares runtime and
// quality, plus a standalone timing of just the global phase per backend.
//
// Two gates ride on the output (scripts/check_bench_regression.py, baseline
// bench/baselines/global_backends.json):
//   * placements_identical — the determinism contract, per backend: the
//     full flow at 8 threads must reproduce the 1-thread placement TO THE
//     BYTE. The harness exits non-zero the moment either backend drifts.
//   * analytic_hpwl_ratio — the quality claim: analytic end-of-flow HPWL
//     over bisection's at the same alpha_ILV budget. The committed ceiling
//     tracks the 1.35x gate in tests/test_place_global.cpp; the 1.10x
//     target is open work (ROADMAP.md).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "place/chip.h"
#include "place/global_backend.h"
#include "place/objective.h"
#include "util/timer.h"

namespace {

bool BytesEqual(const p3d::place::Placement& a,
                const p3d::place::Placement& b) {
  return a.x == b.x && a.y == b.y && a.layer == b.layer;
}

}  // namespace

int main() {
  p3d::bench::BenchSetup setup(
      "global_backends",
      "Global placement backends: runtime + quality comparison");

  const auto spec = p3d::bench::Ibm01();
  const p3d::netlist::Netlist nl = p3d::io::Generate(spec);
  const p3d::place::PlacerParams base = p3d::bench::BaseParams();
  const auto chip = p3d::place::Chip::Build(
      nl, base.num_layers, base.whitespace, base.inter_row_space);
  if (!chip.ok()) {
    std::fprintf(stderr, "FAIL: chip build: %s\n",
                 chip.status().message().c_str());
    return 1;
  }

  std::printf("%-10s %-8s %-10s %-10s %-12s %-10s %-10s\n", "backend",
              "cells", "global_s", "flow_s", "hpwl_m", "ilvs", "identical");

  const p3d::place::GlobalBackend kinds[] = {
      p3d::place::GlobalBackend::kBisection,
      p3d::place::GlobalBackend::kAnalytic};
  double final_hpwl[2] = {0.0, 0.0};
  bool all_identical = true;
  int i = 0;
  for (const p3d::place::GlobalBackend kind : kinds) {
    p3d::place::PlacerParams params = base;
    params.global_backend = kind;

    // Standalone global phase: the backend alone, timed at 1 thread.
    double global_s = 0.0;
    {
      p3d::place::PlacerParams one = params;
      one.threads = 1;
      p3d::place::ObjectiveEvaluator eval(nl, *chip, one);
      auto backend = p3d::place::MakeGlobalPlacerBackend(kind, eval);
      if (!backend.ok()) {
        std::fprintf(stderr, "FAIL: backend: %s\n",
                     backend.status().message().c_str());
        return 1;
      }
      p3d::util::Timer timer;
      const auto handoff = (*backend)->Run({});
      global_s = timer.Seconds();
      if (!handoff.ok()) {
        std::fprintf(stderr, "FAIL: global phase: %s\n",
                     handoff.status().message().c_str());
        return 1;
      }
    }

    // Full flow at 1 thread (the reference) and 8 threads (must be
    // byte-identical — the determinism contract both backends carry).
    p3d::place::PlacementResult reference;
    double flow_s = 0.0;
    bool identical = true;
    for (const int threads : {1, 8}) {
      p3d::place::PlacerParams run = params;
      run.threads = threads;
      run.SyncStack();
      p3d::util::Timer timer;
      const auto r = p3d::bench::RunPlacer(nl, run, /*with_fea=*/false);
      if (threads == 1) {
        flow_s = timer.Seconds();
        reference = r;
      } else {
        identical = BytesEqual(r.placement, reference.placement);
        all_identical = all_identical && identical;
      }
    }
    final_hpwl[i++] = reference.hpwl_m;

    const char* name = p3d::place::GlobalBackendName(kind);
    std::printf("%-10s %-8d %-10.3f %-10.3f %-12.4e %-10lld %-10s\n", name,
                nl.NumCells(), global_s, flow_s, reference.hpwl_m,
                reference.ilv_count, identical ? "yes" : "NO");
    std::fflush(stdout);
    setup.Row({{"backend", name},
               {"circuit", spec.name},
               {"cells", nl.NumCells()},
               {"global_s", global_s},
               {"flow_s", flow_s},
               {"hpwl_m", reference.hpwl_m},
               {"ilv_count", reference.ilv_count},
               {"objective", reference.objective},
               {"identical", identical}});
  }

  const double ratio =
      final_hpwl[0] > 0.0 ? final_hpwl[1] / final_hpwl[0] : 0.0;
  std::printf("\n# analytic/bisection final HPWL: %.3fx  placements %s\n",
              ratio, all_identical ? "byte-identical" : "DIFFER (BUG)");
  setup.Row({{"analytic_hpwl_ratio", ratio},
             {"placements_identical", all_identical}});
  setup.recorder.Flush();

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: a global backend is thread-count sensitive\n");
    return 1;
  }
  return 0;
}
