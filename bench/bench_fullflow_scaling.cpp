// End-to-end full-flow thread-scaling harness (the scale tier).
//
// Where bench_legalize_scaling isolates the coarse phase, this harness runs
// the ENTIRE flow — global placement, coarse legalization, parallel rowopt +
// detailed legalization — on one scale-tier circuit (src/io ScaleTierSpec:
// "lite" 100k / "scale1" 210k / "mega" 1M cells) at 1, 2, 4, and 8 threads,
// and reports the per-phase time breakdown next to the totals.
//
// Environment knobs (on top of the bench_common ones):
//   SCALE_TIER   which preset to run: lite (default), scale1, mega.
//   REPRO_SCALE  multiplies the preset's cell count and area, so the CI
//                smoke run (default 0.05) stays seconds-sized while
//                REPRO_SCALE=1 SCALE_TIER=scale1 reproduces the 210k-cell
//                acceptance run and SCALE_TIER=mega the million-cell one.
//
// Two gates ride on the output (scripts/check_bench_regression.py, baseline
// bench/baselines/fullflow_scaling.json):
//   * placements_identical — the determinism contract, end to end. Every
//     thread count must produce the thread=1 placement TO THE BYTE; the
//     harness exits non-zero the moment any run drifts.
//   * scaling_ok — the throughput claim. On hosts with >= 8 hardware
//     threads the 8-thread full flow must be >= 2.5x faster than serial
//     (the flow includes serial global-placement work, so the bar is lower
//     than the coarse-phase-only 3x); smaller hosts pass vacuously, with
//     hw_threads recording which case applied.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace {

p3d::io::SyntheticSpec TierSpec() {
  std::string tier = "lite";
  if (const char* env = std::getenv("SCALE_TIER")) {
    if (env[0] != '\0') tier = env;
  }
  p3d::io::SyntheticSpec spec = p3d::io::ScaleTierSpec(tier);
  const double scale = p3d::bench::Scale();
  spec.num_cells = std::max<std::int32_t>(
      16, static_cast<std::int32_t>(std::lround(spec.num_cells * scale)));
  spec.total_area_m2 *= scale;
  return spec;
}

}  // namespace

int main() {
  p3d::bench::BenchSetup setup(
      "fullflow_scaling",
      "Full flow (global + coarse + rowopt + detailed) thread scaling");

  const p3d::io::SyntheticSpec spec = TierSpec();
  const p3d::netlist::Netlist nl = p3d::io::Generate(spec);
  const p3d::place::PlacerParams base_params = p3d::bench::BaseParams();

  const int hw_threads = static_cast<int>(std::thread::hardware_concurrency());
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  std::printf("%-8s %-9s %-8s %-10s %-10s %-11s %-10s %-10s\n", "tier",
              "cells", "threads", "global_s", "coarse_s", "detailed_s",
              "total_s", "identical");
  std::vector<double> totals;
  p3d::place::Placement reference;
  bool all_identical = true;
  for (const int threads : thread_counts) {
    p3d::place::PlacerParams params = base_params;
    params.threads = threads;
    params.legalize_threads = threads;
    const p3d::place::PlacementResult result =
        p3d::bench::RunPlacer(nl, params, /*with_fea=*/false);
    totals.push_back(result.t_total);

    bool identical = true;
    if (threads == thread_counts.front()) {
      reference = result.placement;
    } else {
      identical = result.placement.x == reference.x &&
                  result.placement.y == reference.y &&
                  result.placement.layer == reference.layer;
      all_identical = all_identical && identical;
    }
    std::printf("%-8s %-9d %-8d %-10.3f %-10.3f %-11.3f %-10.3f %-10s\n",
                spec.name.c_str(), nl.NumCells(), threads, result.t_global,
                result.t_coarse, result.t_detailed, result.t_total,
                identical ? "yes" : "NO");
    std::fflush(stdout);
    setup.Row({{"tier", spec.name},
               {"cells", nl.NumCells()},
               {"threads", threads},
               {"global_s", result.t_global},
               {"coarse_s", result.t_coarse},
               {"detailed_s", result.t_detailed},
               {"total_s", result.t_total},
               {"legal", result.legal},
               {"identical", identical}});
  }

  const double speedup_8t =
      totals.back() > 0.0 ? totals.front() / totals.back() : 0.0;
  // The >= 2.5x-at-8-threads acceptance only means something when the host
  // actually has 8 hardware threads to run on.
  const bool scaling_ok = hw_threads < 8 || speedup_8t >= 2.5;
  std::printf("\n# full-flow speedup at 8 threads: %.2fx (hw threads: %d)  "
              "placements %s\n",
              speedup_8t, hw_threads,
              all_identical ? "byte-identical" : "DIFFER (BUG)");
  setup.Row({{"hw_threads", hw_threads},
             {"fullflow_speedup_8t", speedup_8t},
             {"placements_identical", all_identical},
             {"scaling_ok", scaling_ok}});
  setup.recorder.Flush();

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: thread count changed the placement bytes\n");
    return 1;
  }
  return 0;
}
