// Figure 9 — Average percent change of interlayer via count, wirelength,
// total power, and average/maximum temperature for ibm01..ibm18 as the
// thermal coefficient is varied (alpha_ILV = 1e-5).
//
// Reproduces the paper's headline: "When the average temperatures are
// reduced by 19%, wirelengths are increased by only 1%" — the harness prints
// the best temperature reduction and the wirelength/via cost at that point.
//
// REPRO_BACKENDS=all repeats the sweep (deltas are always relative to the
// same backend's own alpha_TEMP = 0 run) per global backend; default is
// bisection, the paper's engine.
#include <vector>

#include "bench_common.h"

int main() {
  p3d::bench::BenchSetup setup("fig9_percent_change",
                               "Figure 9: average % change vs alpha_TEMP");
  const auto circuits = p3d::bench::Circuits();
  // Paper sweeps 0 .. 4.1e-5 in x2 steps starting at 1e-8; our thermal scale
  // peaks in the same decade.
  std::vector<double> temp_vals = {0.0};
  for (const double a : p3d::bench::TempSweep(1e-7, 4.1e-5)) {
    temp_vals.push_back(a);
  }

  std::vector<p3d::netlist::Netlist> netlists;
  netlists.reserve(circuits.size());
  for (std::size_t c = 0; c < circuits.size(); ++c) {
    netlists.push_back(p3d::io::Generate(circuits[c]));
  }

  for (const p3d::place::GlobalBackend backend : p3d::bench::Backends()) {
    const char* bname = p3d::place::GlobalBackendName(backend);

    struct Base {
      double ilv, wl, power, avg_t, max_t;
    };
    std::vector<Base> base(circuits.size());

    std::printf("%-10s %-12s %-10s %-10s %-10s %-10s %-10s\n", "backend",
                "alpha_temp", "d_ilv_%", "d_wl_%", "d_power_%", "d_avgT_%",
                "d_maxT_%");
    double best_temp_red = 0.0, wl_at_best = 0.0, ilv_at_best = 0.0;
    for (const double at : temp_vals) {
      double d_ilv = 0, d_wl = 0, d_p = 0, d_at = 0, d_mt = 0;
      for (std::size_t c = 0; c < circuits.size(); ++c) {
        p3d::place::PlacerParams params = p3d::bench::BaseParams();
        params.alpha_temp = at;
        params.global_backend = backend;
        const auto r = p3d::bench::RunPlacer(netlists[c], params, true);
        if (at == 0.0) {
          base[c] = {static_cast<double>(r.ilv_count), r.hpwl_m,
                     r.total_power_w, r.avg_temp_c, r.max_temp_c};
        }
        const Base& b = base[c];
        const double n = static_cast<double>(circuits.size());
        d_ilv += 100.0 * (r.ilv_count - b.ilv) / b.ilv / n;
        d_wl += 100.0 * (r.hpwl_m - b.wl) / b.wl / n;
        d_p += 100.0 * (r.total_power_w - b.power) / b.power / n;
        d_at += 100.0 * (r.avg_temp_c - b.avg_t) / b.avg_t / n;
        d_mt += 100.0 * (r.max_temp_c - b.max_t) / b.max_t / n;
      }
      std::printf("%-10s %-12.3g %-10.1f %-10.1f %-10.1f %-10.1f %-10.1f\n",
                  bname, at, d_ilv, d_wl, d_p, d_at, d_mt);
      setup.Row({{"backend", bname},
                 {"alpha_temp", at},
                 {"d_ilv_pct", d_ilv},
                 {"d_wl_pct", d_wl},
                 {"d_power_pct", d_p},
                 {"d_avg_temp_pct", d_at},
                 {"d_max_temp_pct", d_mt}});
      std::fflush(stdout);
      if (-d_at > best_temp_red) {
        best_temp_red = -d_at;
        wl_at_best = d_wl;
        ilv_at_best = d_ilv;
      }
    }
    std::printf("\n# headline (%s): best avg-temperature reduction %.0f%% at "
                "%+.1f%% wirelength, %+.0f%% vias "
                "(paper: 19%% at +1%% WL, +10%% vias)\n",
                bname, best_temp_red, wl_at_best, ilv_at_best);
    setup.Row({{"backend", bname},
               {"headline_temp_reduction_pct", best_temp_red},
               {"headline_wl_change_pct", wl_at_best},
               {"headline_ilv_change_pct", ilv_at_best}});
  }
  return 0;
}
