// Section 7 effort ablation (text results, no figure number):
//
//  * "by increasing the number of random starts used by hMetis and expanding
//    target region sizes used by the move/swap procedures, a 3.8%
//    improvement in the objective function can be made at a cost of 3.4
//    times slower runtimes"
//  * "if the coarse and detailed legalization procedures are repeated ten
//    times, a 7.7% improvement can be made but with 65 times longer runtime"
//
// This harness runs the three configurations on ibm01 and prints objective
// improvement vs runtime multiplier.
#include <vector>

#include "bench_common.h"

int main() {
  p3d::bench::BenchSetup setup("ablation_effort",
                               "Section 7 ablation: effort vs quality");
  // Single small circuits are noise-dominated; average the objective over a
  // few circuits and seeds per configuration.
  const char* circuit_names[] = {"ibm01", "ibm02", "ibm03"};
  const std::uint64_t seeds[] = {12345, 777};
  std::vector<p3d::netlist::Netlist> netlists;
  for (const char* name : circuit_names) {
    netlists.push_back(
        p3d::io::Generate(p3d::io::Table1Spec(name, p3d::bench::Scale())));
  }

  struct Config {
    const char* name;
    int starts;
    int region_bins;
    int repeats;
  };
  const Config configs[] = {
      {"baseline", 1, 27, 1},
      {"more starts + bigger regions", 4, 125, 1},
      {"10x legalization repeats", 1, 27, p3d::bench::Fast() ? 3 : 10},
  };

  double base_obj = 0.0, base_time = 0.0;
  std::printf("%-30s %-12s %-12s %-12s %-12s\n", "config", "sum_obj",
              "improve_%", "runtime_s", "slowdown_x");
  for (const Config& cfg : configs) {
    double obj_sum = 0.0, time_sum = 0.0;
    for (const auto& nl : netlists) {
      for (const std::uint64_t seed : seeds) {
        p3d::place::PlacerParams params = p3d::bench::BaseParams();
        params.partition_starts = cfg.starts;
        params.target_region_bins = cfg.region_bins;
        params.legalization_repeats = cfg.repeats;
        params.moveswap_rounds = cfg.starts > 1 ? 2 : 1;
        params.seed = seed;
        const auto r = p3d::bench::RunPlacer(nl, params, false);
        obj_sum += r.objective;
        time_sum += r.t_total;
      }
    }
    if (base_obj == 0.0) {
      base_obj = obj_sum;
      base_time = time_sum;
    }
    std::printf("%-30s %-12.5g %-12.2f %-12.2f %-12.1f\n", cfg.name, obj_sum,
                100.0 * (base_obj - obj_sum) / base_obj, time_sum,
                time_sum / base_time);
    setup.Row({{"config", cfg.name},
               {"sum_obj", obj_sum},
               {"improve_pct", 100.0 * (base_obj - obj_sum) / base_obj},
               {"runtime_s", time_sum},
               {"slowdown_x", time_sum / base_time}});
    std::fflush(stdout);
  }
  std::printf("\n# paper: +3.8%% at 3.4x (starts/regions), +7.7%% at 65x "
              "(10 legalization repeats)\n");
  return 0;
}
