// Shared plumbing for the benchmark harnesses that regenerate the paper's
// tables and figures.
//
// Environment knobs:
//   REPRO_SCALE     fraction of the published circuit sizes to generate
//                   (default 0.05; 1.0 reproduces Table 1 exactly)
//   REPRO_FAST      if set (non-empty), coarser sweeps / fewer circuits for
//                   a quick smoke run
//   BENCH_JSON_DIR  directory for the BENCH_<name>.json row dumps
//                   (default: current directory)
//   REPRO_BACKENDS  global backends the figure harnesses sweep:
//                   "bisection" (default), "analytic", or "all" for a
//                   head-to-head comparison (rows gain a backend column)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "io/synthetic.h"
#include "obs/json.h"
#include "place/global_backend.h"
#include "place/placer.h"
#include "util/log.h"

namespace p3d::bench {

inline double Scale() {
  if (const char* env = std::getenv("REPRO_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 0.05;
}

inline bool Fast() {
  const char* env = std::getenv("REPRO_FAST");
  return env != nullptr && env[0] != '\0';
}

/// Table 1 circuits at the configured scale. Fast mode keeps a small,
/// size-diverse subset.
inline std::vector<io::SyntheticSpec> Circuits() {
  std::vector<io::SyntheticSpec> specs = io::Table1Specs(Scale());
  if (!Fast()) return specs;
  return {specs[0], specs[4], specs[9]};  // ibm01, ibm05, ibm10
}

inline io::SyntheticSpec Ibm01() { return io::Table1Spec("ibm01", Scale()); }

/// Global backends the figure harnesses sweep. Defaults to bisection alone —
/// the paper's engine, and what the committed reference numbers were taken
/// with. REPRO_BACKENDS=analytic swaps in the analytic backend; any other
/// non-empty value (e.g. "all") runs both for a head-to-head comparison.
inline std::vector<place::GlobalBackend> Backends() {
  const char* env = std::getenv("REPRO_BACKENDS");
  const std::string_view v = env == nullptr ? "" : env;
  if (v.empty() || v == "bisection") return {place::GlobalBackend::kBisection};
  if (v == "analytic") return {place::GlobalBackend::kAnalytic};
  return {place::GlobalBackend::kBisection, place::GlobalBackend::kAnalytic};
}

/// Table 2 defaults with the wire-capacitance compensation for scaled
/// circuits (DESIGN.md substitution notes).
inline place::PlacerParams BaseParams(int layers = 4) {
  place::PlacerParams params;
  params.num_layers = layers;
  params.alpha_ilv = 1e-5;
  params.alpha_temp = 0.0;
  place::CompensateWireCapForScale(&params, Scale());
  return params;
}

/// The paper's alpha_ILV sweep: 5e-9 .. 5.2e-3 in multiplicative steps of 4
/// ("centred around the average cell width or height (~1e-5)").
inline std::vector<double> IlvSweep() {
  std::vector<double> v;
  const int stride = Fast() ? 4 : 1;
  int i = 0;
  for (double a = 5e-9; a <= 5.3e-3; a *= 4.0) {
    if (i++ % stride == 0) v.push_back(a);
  }
  return v;
}

/// The paper's alpha_TEMP sweep: 1e-8 .. 5.2e-3 in steps of 2 (Figures 6/8).
inline std::vector<double> TempSweep(double lo = 1e-8, double hi = 5.2e-3) {
  std::vector<double> v;
  const int stride = Fast() ? 3 : 1;
  int i = 0;
  for (double a = lo; a <= hi * 1.01; a *= 2.0) {
    if (i++ % stride == 0) v.push_back(a);
  }
  return v;
}

inline place::PlacementResult RunPlacer(const netlist::Netlist& nl,
                                        const place::PlacerParams& params,
                                        bool with_fea) {
  place::Placer3D placer(nl, params);
  return *placer.Run({.with_fea = with_fea});
}

/// Machine-readable twin of each harness's printed table. Every data point
/// the main() prints is also recorded as one JSON object; the collected rows
/// are written to BENCH_<slug>.json (in $BENCH_JSON_DIR, default the current
/// directory) when the recorder goes out of scope. Rows within one file need
/// not share a column set — summary/headline rows just carry fewer keys.
class BenchRecorder {
 public:
  explicit BenchRecorder(std::string slug)
      : slug_(std::move(slug)), rows_(obs::JsonValue::MakeArray()) {}
  ~BenchRecorder() { Flush(); }
  BenchRecorder(const BenchRecorder&) = delete;
  BenchRecorder& operator=(const BenchRecorder&) = delete;

  void Row(std::initializer_list<std::pair<const char*, obs::JsonValue>> cols) {
    obs::JsonValue row = obs::JsonValue::MakeObject();
    for (const auto& [key, value] : cols) row.Set(key, value);
    rows_.Push(std::move(row));
  }

  /// Writes BENCH_<slug>.json once; later calls (and the destructor) are
  /// no-ops. Returns false on I/O failure.
  bool Flush() {
    if (flushed_) return true;
    flushed_ = true;
    const std::size_t num_rows = rows_.AsArray().size();
    obs::JsonValue doc = obs::JsonValue::MakeObject();
    doc.Set("schema", "placer3d.bench");
    doc.Set("version", 1);
    doc.Set("bench", slug_);
    doc.Set("repro_scale", Scale());
    doc.Set("fast", Fast());
    doc.Set("rows", std::move(rows_));
    std::string dir = ".";
    if (const char* env = std::getenv("BENCH_JSON_DIR")) {
      if (env[0] != '\0') dir = env;
    }
    const std::string path = dir + "/BENCH_" + slug_ + ".json";
    const std::string text = doc.SerializePretty() + "\n";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      util::LogWarn("bench: cannot open %s", path.c_str());
      return false;
    }
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    if (ok) std::printf("# wrote %s (%zu rows)\n", path.c_str(), num_rows);
    return ok;
  }

 private:
  std::string slug_;
  obs::JsonValue rows_;
  bool flushed_ = false;
};

/// Quiet-library guard + JSON row recorder shared by all harness mains.
struct BenchSetup {
  util::ScopedLogLevel quiet{util::LogLevel::kWarn};
  BenchRecorder recorder;
  BenchSetup(const char* slug, const char* title) : recorder(slug) {
    std::printf("# %s  (REPRO_SCALE=%g%s)\n", title, Scale(),
                Fast() ? ", REPRO_FAST" : "");
  }
  void Row(std::initializer_list<std::pair<const char*, obs::JsonValue>> c) {
    recorder.Row(c);
  }
};

}  // namespace p3d::bench
