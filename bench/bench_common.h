// Shared plumbing for the benchmark harnesses that regenerate the paper's
// tables and figures.
//
// Environment knobs:
//   REPRO_SCALE  fraction of the published circuit sizes to generate
//                (default 0.05; 1.0 reproduces Table 1 exactly)
//   REPRO_FAST   if set (non-empty), coarser sweeps / fewer circuits for a
//                quick smoke run
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "io/synthetic.h"
#include "place/placer.h"
#include "util/log.h"

namespace p3d::bench {

inline double Scale() {
  if (const char* env = std::getenv("REPRO_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 0.05;
}

inline bool Fast() {
  const char* env = std::getenv("REPRO_FAST");
  return env != nullptr && env[0] != '\0';
}

/// Table 1 circuits at the configured scale. Fast mode keeps a small,
/// size-diverse subset.
inline std::vector<io::SyntheticSpec> Circuits() {
  std::vector<io::SyntheticSpec> specs = io::Table1Specs(Scale());
  if (!Fast()) return specs;
  return {specs[0], specs[4], specs[9]};  // ibm01, ibm05, ibm10
}

inline io::SyntheticSpec Ibm01() { return io::Table1Spec("ibm01", Scale()); }

/// Table 2 defaults with the wire-capacitance compensation for scaled
/// circuits (DESIGN.md substitution notes).
inline place::PlacerParams BaseParams(int layers = 4) {
  place::PlacerParams params;
  params.num_layers = layers;
  params.alpha_ilv = 1e-5;
  params.alpha_temp = 0.0;
  place::CompensateWireCapForScale(&params, Scale());
  return params;
}

/// The paper's alpha_ILV sweep: 5e-9 .. 5.2e-3 in multiplicative steps of 4
/// ("centred around the average cell width or height (~1e-5)").
inline std::vector<double> IlvSweep() {
  std::vector<double> v;
  const int stride = Fast() ? 4 : 1;
  int i = 0;
  for (double a = 5e-9; a <= 5.3e-3; a *= 4.0) {
    if (i++ % stride == 0) v.push_back(a);
  }
  return v;
}

/// The paper's alpha_TEMP sweep: 1e-8 .. 5.2e-3 in steps of 2 (Figures 6/8).
inline std::vector<double> TempSweep(double lo = 1e-8, double hi = 5.2e-3) {
  std::vector<double> v;
  const int stride = Fast() ? 3 : 1;
  int i = 0;
  for (double a = lo; a <= hi * 1.01; a *= 2.0) {
    if (i++ % stride == 0) v.push_back(a);
  }
  return v;
}

inline place::PlacementResult RunPlacer(const netlist::Netlist& nl,
                                        const place::PlacerParams& params,
                                        bool with_fea) {
  place::Placer3D placer(nl, params);
  return placer.Run(with_fea);
}

/// Quiet-library guard shared by all harness mains.
struct BenchSetup {
  util::ScopedLogLevel quiet{util::LogLevel::kWarn};
  BenchSetup(const char* name) {
    std::printf("# %s  (REPRO_SCALE=%g%s)\n", name, Scale(),
                Fast() ? ", REPRO_FAST" : "");
  }
};

}  // namespace p3d::bench
