// Table 1 — Benchmark Circuits.
//
// Prints the published cell counts / areas next to the statistics of the
// synthetic equivalents actually generated at REPRO_SCALE (see DESIGN.md
// substitution #1). The paper's columns are "cells" and "area (mm^2)"; we
// add the generated net/pin counts for reference.
#include "bench_common.h"

int main() {
  p3d::bench::BenchSetup setup("table1_benchmarks",
                               "Table 1: benchmark circuits");
  const auto published = p3d::io::Table1Specs(1.0);
  const double scale = p3d::bench::Scale();

  std::printf("%-8s %-12s %-12s | %-12s %-12s %-10s %-10s\n", "name",
              "paper_cells", "paper_mm2", "gen_cells", "gen_mm2", "gen_nets",
              "gen_pins");
  for (const auto& pub : published) {
    p3d::io::SyntheticSpec spec = p3d::io::Table1Spec(pub.name, scale);
    const p3d::netlist::Netlist nl = p3d::io::Generate(spec);
    std::printf("%-8s %-12d %-12.3f | %-12d %-12.4f %-10d %-10d\n",
                pub.name.c_str(), pub.num_cells, pub.total_area_m2 * 1e6,
                nl.NumCells(), nl.MovableArea() * 1e6, nl.NumNets(),
                nl.NumPins());
    setup.Row({{"circuit", pub.name},
               {"paper_cells", pub.num_cells},
               {"paper_mm2", pub.total_area_m2 * 1e6},
               {"gen_cells", nl.NumCells()},
               {"gen_mm2", nl.MovableArea() * 1e6},
               {"gen_nets", nl.NumNets()},
               {"gen_pins", nl.NumPins()}});
  }
  std::printf("\n# generated circuits are %g-scale replicas; cells and area "
              "scale together\n", scale);
  return 0;
}
