// Figure 5 — Tradeoff curves for ibm01 with increasing number of layers.
//
// Sweeps alpha_ILV for layer counts 1..10 and prints (wirelength, vias per
// interlayer) curves. Expected shape: more layers shift the curves toward
// shorter wirelengths (the paper's Figure 5), with the 1-layer "curve"
// collapsing to a single zero-via point.
#include "bench_common.h"

int main() {
  p3d::bench::BenchSetup setup("fig5_layers",
                               "Figure 5: ibm01 tradeoff curves, 1-10 layers");
  const p3d::netlist::Netlist nl = p3d::io::Generate(p3d::bench::Ibm01());
  const auto sweep = p3d::bench::IlvSweep();
  const int max_layers = p3d::bench::Fast() ? 4 : 10;

  std::printf("%-8s %-12s %-12s %-16s\n", "layers", "alpha_ilv", "hpwl_m",
              "ilv_per_interlayer");
  for (int layers = 1; layers <= max_layers; ++layers) {
    for (const double alpha : sweep) {
      p3d::place::PlacerParams params = p3d::bench::BaseParams(layers);
      params.alpha_ilv = alpha;
      const auto r = p3d::bench::RunPlacer(nl, params, false);
      const double per_interlayer =
          layers > 1 ? static_cast<double>(r.ilv_count) / (layers - 1) : 0.0;
      std::printf("%-8d %-12.3g %-12.5g %-16.1f\n", layers, alpha, r.hpwl_m,
                  per_interlayer);
      setup.Row({{"layers", layers},
                 {"alpha_ilv", alpha},
                 {"hpwl_m", r.hpwl_m},
                 {"ilv_per_interlayer", per_interlayer}});
      std::fflush(stdout);
      if (layers == 1) break;  // alpha_ILV is irrelevant without vias
    }
  }
  return 0;
}
