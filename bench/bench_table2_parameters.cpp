// Table 2 — Parameters.
//
// Prints every Table 2 constant as wired into the library defaults, plus the
// constants the paper leaves unpublished (with our documented defaults).
#include "bench_common.h"

int main() {
  p3d::bench::BenchSetup setup("table2_parameters", "Table 2: parameters");
  const p3d::place::PlacerParams p = p3d::bench::BaseParams();
  const auto& s = p.stack;
  const auto& e = p.electrical;

  std::printf("%-34s %-14s %s\n", "parameter", "paper", "library");
  std::printf("%-34s %-14s %d\n", "number of layers", "4", p.num_layers);
  std::printf("%-34s %-14s %.4g um\n", "bulk substrate thickness", "500um",
              s.bulk_thickness * 1e6);
  std::printf("%-34s %-14s %.4g um\n", "layer thickness", "5.7um",
              s.layer_thickness * 1e6);
  std::printf("%-34s %-14s %.4g um\n", "interlayer thickness", "0.7um",
              s.interlayer_thickness * 1e6);
  std::printf("%-34s %-14s %.4g W/mK (tier stack)\n",
              "effective thermal conductivity", "10.2 W/mK", s.k_stack);
  std::printf("%-34s %-14s %.4g W/mK (bulk; see DESIGN.md)\n", "", "",
              s.k_bulk);
  std::printf("%-34s %-14s %.4g C\n", "ambient temperature", "0 C",
              s.ambient_c);
  std::printf("%-34s %-14s %.3g W/m2K\n", "conv. coef. of heat sink",
              "1e6 W/m2K", s.h_sink);
  std::printf("%-34s %-14s %.4g%%\n", "whitespace", "5%",
              p.whitespace * 100);
  std::printf("%-34s %-14s %.4g%%\n", "inter-row/row space", "25%",
              p.inter_row_space * 100);
  std::printf("%-34s %-14s %.4g pF/m (x%.3g scale comp.)\n",
              "lateral interconnect cap.", "73.8 pF/m", e.c_per_wl * 1e12,
              e.c_per_wl / 73.8e-12);
  std::printf("%-34s %-14s %.4g pF/m over %.3g um vias\n",
              "interlayer via cap.", "1480 pF/m", e.c_per_ilv_m * 1e12,
              e.ilv_length * 1e6);
  std::printf("%-34s %-14s %.4g fF\n", "input pin capacitance", "0.350 fF",
              e.c_per_pin * 1e15);
  std::printf("\n# unpublished constants (DESIGN.md substitution #5):\n");
  std::printf("%-34s %-14s %.3g Hz\n", "clock frequency f", "-", e.clock_hz);
  std::printf("%-34s %-14s %.3g V\n", "supply voltage VDD", "-", e.vdd);
  std::printf("%-34s %-14s heavy-tailed 0.01..0.5\n", "switching activities",
              "-");
  setup.Row({{"num_layers", p.num_layers},
             {"bulk_thickness_um", s.bulk_thickness * 1e6},
             {"layer_thickness_um", s.layer_thickness * 1e6},
             {"interlayer_thickness_um", s.interlayer_thickness * 1e6},
             {"k_stack_w_mk", s.k_stack},
             {"k_bulk_w_mk", s.k_bulk},
             {"ambient_c", s.ambient_c},
             {"h_sink_w_m2k", s.h_sink},
             {"whitespace_pct", p.whitespace * 100},
             {"inter_row_space_pct", p.inter_row_space * 100},
             {"c_per_wl_pf_m", e.c_per_wl * 1e12},
             {"c_per_ilv_pf_m", e.c_per_ilv_m * 1e12},
             {"ilv_length_um", e.ilv_length * 1e6},
             {"c_per_pin_ff", e.c_per_pin * 1e15},
             {"clock_hz", e.clock_hz},
             {"vdd_v", e.vdd}});
  return 0;
}
