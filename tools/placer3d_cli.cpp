// placer3d — command-line front end.
//
// Places a Bookshelf design or a generated Table-1 circuit with the full
// thermal/via-aware flow and writes any combination of: an extended .pl, an
// SVG visualization (structure or thermal view), and a text quality report.
//
// Usage:
//   placer3d_cli [options]
//     --circuit NAME|-        ibm01..ibm18 synthetic circuit (default ibm01)
//     --aux PATH              load a Bookshelf .aux instead of --circuit
//     --scale S               synthetic circuit scale (default 0.05)
//     --layers N              active layers (default 4)
//     --alpha-ilv V           interlayer via coefficient (default 1e-5)
//     --alpha-temp V          thermal coefficient (default 0)
//     --global-backend NAME   global-placement engine: bisection (paper
//                             Section 3 recursive bisection, default) or
//                             analytic (quadratic B2B + 3D density)
//     --seed N                placer seed
//     --threads N             worker threads (0 = all hardware threads);
//                             results are identical for any thread count
//     --legalize-threads N    worker threads for the windowed coarse
//                             legalization schedule (0 = inherit --threads)
//     --legalize-window N     coarse-legalization window edge, in bins
//                             (default 8, min 2)
//     --out-pl PATH           write extended .pl
//     --export-bookshelf DIR  write the circuit + placement as a complete
//                             Bookshelf design (aux/nodes/nets/pl/scl)
//     --out-svg PATH          write layer-panel SVG (structure view)
//     --out-thermal-svg PATH  write SVG colored by FEA cell temperature
//     --report                print the placement quality report
//     --trace PATH            write a Chrome trace-event JSON of the run
//                             (open in Perfetto / chrome://tracing)
//     --metrics PATH          write the machine-readable run report
//                             (report.json: params, per-phase Eq. 3 series,
//                             QoR, timings, full metrics snapshot)
//     --audit LEVEL           off|phase|paranoid — verify invariants at every
//                             phase boundary (paranoid also replays every
//                             committed move); exits 3 on any violation
//     --blackbox PATH         flight-recorder black box: the last N events
//                             per thread auto-dump to PATH as a Chrome trace
//                             on audit violations and fatal signals
//     --no-fea                skip the FEA temperature solve
//     --fea-per-pass          re-solve thermal FEA after every legalization
//                             pass (observational; pair with
//                             --fea-precond multigrid to keep it cheap)
//     --fea-precond NAME      FEA preconditioner: jacobi|ic0|multigrid
//                             (default ic0)
//     --quiet                 errors only
//
// Every --flag also accepts the --flag=value spelling.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "check/audit.h"
#include "io/bookshelf.h"
#include "io/svg.h"
#include "io/synthetic.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/ring.h"
#include "obs/trace.h"
#include "place/global_backend.h"
#include "place/instrument.h"
#include "place/monitor.h"
#include "place/placer.h"
#include "place/report.h"
#include "thermal/fea.h"
#include "thermal/power.h"
#include "util/log.h"
#include "util/status.h"

namespace {

struct Args {
  std::string circuit = "ibm01";
  std::string aux;
  double scale = 0.05;
  int layers = 4;
  double alpha_ilv = 1e-5;
  double alpha_temp = 0.0;
  p3d::place::GlobalBackend global_backend =
      p3d::place::GlobalBackend::kBisection;
  std::uint64_t seed = 12345;
  int threads = 1;
  int legalize_threads = 0;
  int legalize_window = 8;
  std::string out_pl;
  std::string export_dir;
  std::string out_svg;
  std::string out_thermal_svg;
  std::string trace_path;
  std::string metrics_path;
  std::string blackbox_path;
  bool report = false;
  bool fea = true;
  bool fea_per_pass = false;
  p3d::linalg::PreconditionerKind fea_precond =
      p3d::linalg::PreconditionerKind::kIc0;
  bool quiet = false;
  p3d::place::AuditLevel audit = p3d::place::AuditLevel::kOff;
};

void PrintUsage() {
  std::puts(
      "usage: placer3d_cli [--circuit ibmXX | --aux design.aux] [--scale S]\n"
      "                    [--layers N] [--alpha-ilv V] [--alpha-temp V]\n"
      "                    [--global-backend bisection|analytic]\n"
      "                    [--seed N] [--threads N] [--legalize-threads N]\n"
      "                    [--legalize-window N] [--out-pl F] [--out-svg F]\n"
      "                    [--out-thermal-svg F] [--report] [--no-fea]\n"
      "                    [--fea-per-pass] [--fea-precond jacobi|ic0|multigrid]\n"
      "                    [--trace F] [--metrics F] [--blackbox F]\n"
      "                    [--audit off|phase|paranoid] [--quiet]");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    // Accept both "--flag value" and "--flag=value".
    std::string inline_value;
    bool has_inline = false;
    if (a.size() > 2 && a[0] == '-' && a[1] == '-') {
      const std::size_t eq = a.find('=');
      if (eq != std::string::npos) {
        inline_value = a.substr(eq + 1);
        a.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&](const char* flag) -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      PrintUsage();
      std::exit(0);
    } else if (a == "--circuit") {
      const char* v = next("--circuit");
      if (!v) return false;
      args->circuit = v;
    } else if (a == "--aux") {
      const char* v = next("--aux");
      if (!v) return false;
      args->aux = v;
    } else if (a == "--scale") {
      const char* v = next("--scale");
      if (!v) return false;
      args->scale = std::atof(v);
    } else if (a == "--layers") {
      const char* v = next("--layers");
      if (!v) return false;
      args->layers = std::atoi(v);
    } else if (a == "--alpha-ilv") {
      const char* v = next("--alpha-ilv");
      if (!v) return false;
      args->alpha_ilv = std::atof(v);
    } else if (a == "--alpha-temp") {
      const char* v = next("--alpha-temp");
      if (!v) return false;
      args->alpha_temp = std::atof(v);
    } else if (a == "--global-backend") {
      const char* v = next("--global-backend");
      if (!v) return false;
      const auto backend = p3d::place::ParseGlobalBackend(v);
      if (!backend.ok()) {
        std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
        return false;
      }
      args->global_backend = *backend;
    } else if (a == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      args->seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--threads") {
      const char* v = next("--threads");
      if (!v) return false;
      args->threads = std::atoi(v);
    } else if (a == "--legalize-threads") {
      const char* v = next("--legalize-threads");
      if (!v) return false;
      args->legalize_threads = std::atoi(v);
    } else if (a == "--legalize-window") {
      const char* v = next("--legalize-window");
      if (!v) return false;
      args->legalize_window = std::atoi(v);
    } else if (a == "--export-bookshelf") {
      const char* v = next("--export-bookshelf");
      if (!v) return false;
      args->export_dir = v;
    } else if (a == "--out-pl") {
      const char* v = next("--out-pl");
      if (!v) return false;
      args->out_pl = v;
    } else if (a == "--out-svg") {
      const char* v = next("--out-svg");
      if (!v) return false;
      args->out_svg = v;
    } else if (a == "--out-thermal-svg") {
      const char* v = next("--out-thermal-svg");
      if (!v) return false;
      args->out_thermal_svg = v;
    } else if (a == "--trace") {
      const char* v = next("--trace");
      if (!v) return false;
      args->trace_path = v;
    } else if (a == "--metrics") {
      const char* v = next("--metrics");
      if (!v) return false;
      args->metrics_path = v;
    } else if (a == "--blackbox") {
      const char* v = next("--blackbox");
      if (!v) return false;
      args->blackbox_path = v;
    } else if (a == "--audit") {
      const char* v = next("--audit");
      if (!v) return false;
      const std::string level = v;
      if (level == "off") {
        args->audit = p3d::place::AuditLevel::kOff;
      } else if (level == "phase") {
        args->audit = p3d::place::AuditLevel::kPhase;
      } else if (level == "paranoid") {
        args->audit = p3d::place::AuditLevel::kParanoid;
      } else {
        std::fprintf(stderr, "bad --audit level: %s\n", v);
        return false;
      }
    } else if (a == "--report") {
      args->report = true;
    } else if (a == "--no-fea") {
      args->fea = false;
    } else if (a == "--fea-per-pass") {
      args->fea_per_pass = true;
    } else if (a == "--fea-precond") {
      const char* v = next("--fea-precond");
      if (!v) return false;
      const std::string kind = v;
      if (kind == "jacobi") {
        args->fea_precond = p3d::linalg::PreconditionerKind::kJacobi;
      } else if (kind == "ic0") {
        args->fea_precond = p3d::linalg::PreconditionerKind::kIc0;
      } else if (kind == "multigrid") {
        args->fea_precond = p3d::linalg::PreconditionerKind::kMultigrid;
      } else {
        std::fprintf(stderr, "bad --fea-precond kind: %s\n", v);
        return false;
      }
    } else if (a == "--quiet") {
      args->quiet = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      PrintUsage();
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  p3d::util::SetLogLevel(args.quiet ? p3d::util::LogLevel::kError
                                    : p3d::util::LogLevel::kInfo);

  // --- load or generate the circuit -------------------------------------
  // Exit codes: 0 success, 1 runtime/input error, 2 usage error, 3 audit
  // violation. Library Status errors map onto 1 (2 when the argument itself
  // was unusable).
  p3d::netlist::Netlist netlist;
  if (!args.aux.empty()) {
    p3d::io::BookshelfDesign design;
    if (const p3d::util::Status s =
            p3d::io::LoadBookshelf(args.aux, 1e-6, &design);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return s.code() == p3d::util::StatusCode::kInvalidArgument ? 2 : 1;
    }
    netlist = std::move(design.netlist);
  } else {
    try {
      netlist = p3d::io::Generate(p3d::io::Table1Spec(args.circuit, args.scale));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }
  std::printf("circuit: %d cells, %d nets, %d pins\n", netlist.NumCells(),
              netlist.NumNets(), netlist.NumPins());

  // --- place ---------------------------------------------------------------
  p3d::place::PlacerParams params;
  params.num_layers = args.layers;
  params.alpha_ilv = args.alpha_ilv;
  params.alpha_temp = args.alpha_temp;
  params.global_backend = args.global_backend;
  params.seed = args.seed;
  params.threads = args.threads;
  params.legalize_threads = args.legalize_threads;
  params.legalize_window_bins = args.legalize_window;
  params.fea_per_pass = args.fea_per_pass;
  params.audit_level = args.audit;
  if (args.aux.empty()) {
    p3d::place::CompensateWireCapForScale(&params, args.scale);
  }
  p3d::util::StatusOr<p3d::place::Placer3D> placer_or =
      p3d::place::Placer3D::Create(netlist, params);
  if (!placer_or.ok()) {
    std::fprintf(stderr, "%s\n", placer_or.status().ToString().c_str());
    return placer_or.status().code() == p3d::util::StatusCode::kInvalidArgument
               ? 2
               : 1;
  }
  p3d::place::Placer3D& placer = *placer_or;
  std::unique_ptr<p3d::check::PlacementAuditor> auditor;
  if (args.audit != p3d::place::AuditLevel::kOff) {
    auditor = std::make_unique<p3d::check::PlacementAuditor>(netlist,
                                                             args.audit);
    auditor->Attach(&placer);
  }

  // Black box: always on — recording costs a few relaxed stores per phase
  // span and never perturbs placement. With --blackbox the last N events
  // per thread auto-dump on audit violations and fatal signals.
  static p3d::obs::RingRecorder ring;  // outlives every early-return path
  p3d::obs::InstallRingRecorder(&ring);
  if (!args.blackbox_path.empty()) {
    if (!p3d::obs::SetBlackBoxPath(args.blackbox_path)) {
      std::fprintf(stderr, "invalid --blackbox path\n");
      return 2;
    }
    p3d::obs::InstallCrashHandler();
  }

  // Flight recorder: installed only on request, so the default path costs
  // one atomic load per instrumentation point. Observers are additive, so
  // the sampler coexists with the auditor's phase hook and the convergence
  // anomaly monitor.
  p3d::obs::TraceSink trace_sink;
  p3d::obs::MetricsRegistry metrics;
  p3d::place::PhaseMetricsSampler sampler;
  p3d::place::AnomalyMonitor monitor;
  if (!args.trace_path.empty()) p3d::obs::InstallTraceSink(&trace_sink);
  if (!args.trace_path.empty() || !args.metrics_path.empty()) {
    p3d::obs::InstallMetrics(&metrics);
    placer.AddPhaseObserver(&sampler);
    placer.AddPhaseObserver(&monitor);
  }

  p3d::place::RunOptions run_opts;
  run_opts.with_fea = args.fea || !args.out_thermal_svg.empty();
  run_opts.preconditioner = args.fea_precond;
  p3d::util::StatusOr<p3d::place::PlacementResult> result_or =
      placer.Run(run_opts);
  if (!result_or.ok()) {
    std::fprintf(stderr, "%s\n", result_or.status().ToString().c_str());
    return 1;
  }
  const p3d::place::PlacementResult& r = *result_or;

  p3d::obs::InstallTraceSink(nullptr);
  p3d::obs::InstallMetrics(nullptr);
  if (!args.trace_path.empty()) {
    if (!trace_sink.WriteChromeJson(args.trace_path)) {
      std::fprintf(stderr, "failed to write %s\n", args.trace_path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu events)\n", args.trace_path.c_str(),
                trace_sink.NumEvents());
  }
  if (!args.metrics_path.empty()) {
    p3d::obs::RunReport report;
    report.circuit = args.aux.empty() ? args.circuit : args.aux;
    report.cells = netlist.NumCells();
    report.nets = netlist.NumNets();
    report.pins = netlist.NumPins();
    if (args.aux.empty()) report.params.emplace_back("scale", args.scale);
    report.params.emplace_back("layers", args.layers);
    report.params.emplace_back("alpha_ilv", args.alpha_ilv);
    report.params.emplace_back("alpha_temp", args.alpha_temp);
    report.params.emplace_back("seed", args.seed);
    report.params.emplace_back("threads", args.threads);
    report.params.emplace_back("legalize_threads", args.legalize_threads);
    report.params.emplace_back("legalize_window", args.legalize_window);
    report.params.emplace_back("fea_per_pass", args.fea_per_pass);
    report.phases = sampler.samples();
    report.qor.emplace_back("hpwl_m", r.hpwl_m);
    report.qor.emplace_back("ilv", r.ilv_count);
    report.qor.emplace_back("ilv_density_per_m2", r.ilv_density);
    report.qor.emplace_back("objective", r.objective);
    report.qor.emplace_back("power_w", r.total_power_w);
    report.qor.emplace_back("legal", r.legal);
    report.qor.emplace_back("overlaps", r.overlaps);
    report.qor.emplace_back("fea_nonconverged", r.fea_nonconverged);
    if (r.fea_valid) {
      report.qor.emplace_back("avg_temp_c", r.avg_temp_c);
      report.qor.emplace_back("max_temp_c", r.max_temp_c);
    }
    report.timings.emplace_back("global_s", r.t_global);
    report.timings.emplace_back("coarse_s", r.t_coarse);
    report.timings.emplace_back("detailed_s", r.t_detailed);
    report.timings.emplace_back("total_s", r.t_total);
    report.metrics = &metrics;
    if (!report.Write(args.metrics_path)) {
      std::fprintf(stderr, "failed to write %s\n", args.metrics_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.metrics_path.c_str());
  }

  std::printf("result: hpwl %.5g m | %lld vias | %.5g W | %s\n", r.hpwl_m,
              r.ilv_count, r.total_power_w, r.legal ? "legal" : "NOT LEGAL");
  if (auditor != nullptr) {
    std::fputs(auditor->report().Summary().c_str(), stdout);
    if (!auditor->ok()) return 3;
  }
  if (r.fea_valid) {
    std::printf("temps:  avg %.2f C, max %.2f C above ambient\n",
                r.avg_temp_c, r.max_temp_c);
  }

  // --- outputs ----------------------------------------------------------------
  if (args.report) {
    const auto report = p3d::place::AnalyzePlacement(netlist, placer.chip(),
                                                     params, r.placement);
    std::fputs(p3d::place::FormatReport(report).c_str(), stdout);
  }
  if (!args.out_pl.empty()) {
    if (!p3d::io::WritePlFile(args.out_pl, netlist, r.placement.x,
                              r.placement.y, r.placement.layer, 1e-6)) {
      return 1;
    }
    std::printf("wrote %s\n", args.out_pl.c_str());
  }
  if (!args.export_dir.empty()) {
    const std::string base = args.aux.empty() ? args.circuit : "design";
    if (!p3d::io::WriteBookshelf(args.export_dir, base, netlist, 1e-6,
                                 &placer.chip(), &r.placement)) {
      return 1;
    }
    std::printf("wrote %s/%s.{aux,nodes,nets,pl,scl}\n",
                args.export_dir.c_str(), base.c_str());
  }
  if (!args.out_svg.empty()) {
    p3d::io::SvgOptions opt;
    opt.title = "placer3d: " + (args.aux.empty() ? args.circuit : args.aux);
    if (!p3d::io::WritePlacementSvg(args.out_svg, netlist, placer.chip(),
                                    r.placement, opt)) {
      return 1;
    }
    std::printf("wrote %s\n", args.out_svg.c_str());
  }
  if (!args.out_thermal_svg.empty()) {
    // Per-cell FEA temperatures drive the color ramp.
    const auto metrics = p3d::thermal::ComputeNetMetrics(
        netlist, r.placement.x, r.placement.y, r.placement.layer);
    const auto power =
        p3d::thermal::ComputePower(netlist, metrics, params.electrical);
    p3d::place::PlacerParams synced = params;
    synced.SyncStack();
    p3d::thermal::FeaOptions fopt;
    fopt.cg.threads = synced.threads;
    const p3d::thermal::FeaSolver fea(
        synced.stack,
        p3d::thermal::ChipExtent{placer.chip().width(), placer.chip().height()},
        fopt);
    const auto ft = fea.Solve(r.placement.x, r.placement.y, r.placement.layer,
                              power.cell_power);
    p3d::io::SvgOptions opt;
    opt.title = "placer3d thermal view (blue=cool, red=hot)";
    opt.cell_scalar = ft.cell_temp;
    if (!p3d::io::WritePlacementSvg(args.out_thermal_svg, netlist,
                                    placer.chip(), r.placement, opt)) {
      return 1;
    }
    std::printf("wrote %s\n", args.out_thermal_svg.c_str());
  }
  return r.legal ? 0 : 1;
}
