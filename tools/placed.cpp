// placed — batch placement daemon front end over serve::JobEngine.
//
// Reads a jobs manifest ("placer3d.jobs" v1, see src/serve/manifest.h),
// runs every job on a bounded worker pool with the cross-job FEA cache,
// streams one progress line per completed job, and writes the aggregated
// batch report ("placer3d.batch_report" v1).
//
// Usage:
//   placed --manifest jobs.json [options]
//     --manifest PATH     jobs manifest (required)
//     --workers N         engine worker threads (default 4)
//     --thread-budget N   per-job inner-thread budget (default: engine
//                         policy — 1 when workers > 1)
//     --report PATH       write the batch report JSON
//     --quiet             errors only
//
// Every --flag also accepts the --flag=value spelling.
//
// Exit codes: 0 all jobs placed, 1 runtime error or any job failed,
// 2 usage error, 4 jobs cancelled (deadline misses) but none failed.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "serve/batch.h"
#include "serve/job_engine.h"
#include "serve/manifest.h"
#include "util/log.h"
#include "util/status.h"
#include "util/timer.h"

namespace {

struct Args {
  std::string manifest;
  std::string report;
  int workers = 4;
  int thread_budget = 0;
  bool quiet = false;
};

void PrintUsage() {
  std::puts(
      "usage: placed --manifest jobs.json [--workers N] [--thread-budget N]\n"
      "              [--report batch_report.json] [--quiet]");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (a.size() > 2 && a[0] == '-' && a[1] == '-') {
      const std::size_t eq = a.find('=');
      if (eq != std::string::npos) {
        inline_value = a.substr(eq + 1);
        a.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&](const char* flag) -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      PrintUsage();
      std::exit(0);
    } else if (a == "--manifest") {
      const char* v = next("--manifest");
      if (!v) return false;
      args->manifest = v;
    } else if (a == "--report") {
      const char* v = next("--report");
      if (!v) return false;
      args->report = v;
    } else if (a == "--workers") {
      const char* v = next("--workers");
      if (!v) return false;
      args->workers = std::atoi(v);
    } else if (a == "--thread-budget") {
      const char* v = next("--thread-budget");
      if (!v) return false;
      args->thread_budget = std::atoi(v);
    } else if (a == "--quiet") {
      args->quiet = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      PrintUsage();
      return false;
    }
  }
  if (args->manifest.empty()) {
    std::fprintf(stderr, "--manifest is required\n");
    PrintUsage();
    return false;
  }
  if (args->workers < 1) {
    std::fprintf(stderr, "--workers must be >= 1\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  p3d::util::SetLogLevel(args.quiet ? p3d::util::LogLevel::kError
                                    : p3d::util::LogLevel::kWarn);

  auto manifest_or = p3d::serve::LoadJobsManifest(args.manifest);
  if (!manifest_or.ok()) {
    std::fprintf(stderr, "%s\n", manifest_or.status().ToString().c_str());
    return manifest_or.status().code() ==
                   p3d::util::StatusCode::kInvalidArgument
               ? 2
               : 1;
  }
  p3d::serve::JobsManifest manifest = *std::move(manifest_or);
  if (manifest.jobs.empty()) {
    std::fprintf(stderr, "manifest has no jobs\n");
    return 2;
  }

  p3d::serve::JobEngineOptions engine_opts;
  engine_opts.num_workers = args.workers;
  engine_opts.thread_budget = args.thread_budget;
  p3d::serve::JobEngine engine(engine_opts);
  std::printf("placed: %zu jobs on %d workers (per-job thread budget %s)\n",
              manifest.jobs.size(), engine.num_workers(),
              engine.job_thread_budget() > 0
                  ? std::to_string(engine.job_thread_budget()).c_str()
                  : "unlimited");

  // Streamed progress: the callback runs serialized on the completing
  // worker, so one line per finished job in completion order.
  const std::size_t total = manifest.jobs.size();
  engine.SetCompletionCallback([total](p3d::serve::JobHandle,
                                       const std::string& name,
                                       const p3d::serve::JobResult& result) {
    static std::size_t done = 0;  // callback is serialized by the engine
    ++done;
    if (result.status.ok()) {
      const auto& r = result.placement;
      std::printf("[%zu/%zu] %-24s ok         hpwl %.5g m | %lld vias | "
                  "%.2fs\n",
                  done, total, name.c_str(), r.hpwl_m, r.ilv_count,
                  result.wall_s);
    } else {
      std::printf("[%zu/%zu] %-24s %-10s %s\n", done, total, name.c_str(),
                  p3d::util::IsCancelled(result.status) ? "cancelled"
                                                        : "FAILED",
                  result.status.message().c_str());
    }
    std::fflush(stdout);
  });

  p3d::util::Timer timer;
  std::vector<p3d::serve::JobHandle> handles;
  handles.reserve(manifest.jobs.size());
  for (p3d::serve::JobSpec& spec : manifest.jobs) {
    auto handle_or = engine.Submit(std::move(spec));
    if (!handle_or.ok()) {
      std::fprintf(stderr, "submit: %s\n",
                   handle_or.status().ToString().c_str());
      return 1;
    }
    handles.push_back(*handle_or);
  }
  engine.WaitAll();
  const double wall_s = timer.Seconds();

  const p3d::serve::JobEngine::Stats stats = engine.GetStats();
  std::printf(
      "placed: %lld ok, %lld cancelled, %lld failed in %.2fs "
      "(fea cache: %lld hits, %lld misses, %lld evictions)\n",
      stats.completed, stats.cancelled, stats.failed, wall_s,
      stats.fea_cache.hits, stats.fea_cache.misses,
      stats.fea_cache.evictions);

  if (!args.report.empty()) {
    const p3d::obs::JsonValue report =
        p3d::serve::BuildBatchReport(engine, handles);
    std::string error;
    if (!p3d::serve::ValidateBatchReport(report, &error)) {
      std::fprintf(stderr, "internal: batch report invalid: %s\n",
                   error.c_str());
      return 1;
    }
    if (!p3d::serve::WriteBatchReport(report, args.report)) {
      std::fprintf(stderr, "failed to write %s\n", args.report.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.report.c_str());
  }

  if (stats.failed > 0) return 1;
  if (stats.cancelled > 0) return 4;
  return 0;
}
