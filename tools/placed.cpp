// placed — batch placement daemon front end over serve::JobEngine.
//
// Reads a jobs manifest ("placer3d.jobs" v1, see src/serve/manifest.h),
// runs every job on a bounded worker pool with the cross-job FEA cache,
// streams one progress line per completed job, and writes the aggregated
// batch report ("placer3d.batch_report" v1).
//
// Usage:
//   placed --manifest jobs.json [options]
//     --manifest PATH     jobs manifest (required)
//     --workers N         engine worker threads (default 4)
//     --thread-budget N   per-job inner-thread budget (default: engine
//                         policy — 1 when workers > 1)
//     --report PATH       write the batch report JSON
//     --telemetry-port N  serve /metrics /jobs /healthz on 127.0.0.1:N
//                         (0 = ephemeral; off when omitted)
//     --stall-timeout S   watchdog: flag jobs with no phase heartbeat for
//                         S seconds (off when omitted)
//     --heartbeat-interval S  stream per-job heartbeat lines to stderr
//                         every S seconds (off when omitted)
//     --blackbox PATH     flight-recorder dump file for audit violations,
//                         stalls, cancellations, and fatal signals
//     --global-backend NAME  override the global-placement backend of every
//                         job in the manifest (bisection | analytic)
//     --quiet             errors only
//
// Every --flag also accepts the --flag=value spelling. Progress (per-job
// completion and heartbeat lines) streams to stderr; stdout carries only
// the batch summary, so piping it stays clean.
//
// Exit codes: 0 all jobs placed, 1 runtime error or any job failed,
// 2 usage error, 4 jobs cancelled (deadline misses) but none failed.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/ring.h"
#include "place/global_backend.h"
#include "serve/batch.h"
#include "serve/job_engine.h"
#include "serve/manifest.h"
#include "serve/telemetry.h"
#include "util/log.h"
#include "util/status.h"
#include "util/timer.h"

namespace {

struct Args {
  std::string manifest;
  std::string report;
  std::string blackbox;
  int workers = 4;
  int thread_budget = 0;
  int telemetry_port = -1;        // < 0: no server
  double stall_timeout_s = 0.0;   // 0: no watchdog
  double heartbeat_interval_s = 0.0;  // 0: no heartbeat stream
  bool quiet = false;
  bool override_backend = false;  // --global-backend given
  p3d::place::GlobalBackend global_backend =
      p3d::place::GlobalBackend::kBisection;
};

void PrintUsage() {
  std::puts(
      "usage: placed --manifest jobs.json [--workers N] [--thread-budget N]\n"
      "              [--report batch_report.json] [--telemetry-port N]\n"
      "              [--stall-timeout S] [--heartbeat-interval S]\n"
      "              [--blackbox trace.json] [--global-backend NAME]\n"
      "              [--quiet]");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (a.size() > 2 && a[0] == '-' && a[1] == '-') {
      const std::size_t eq = a.find('=');
      if (eq != std::string::npos) {
        inline_value = a.substr(eq + 1);
        a.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&](const char* flag) -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      PrintUsage();
      std::exit(0);
    } else if (a == "--manifest") {
      const char* v = next("--manifest");
      if (!v) return false;
      args->manifest = v;
    } else if (a == "--report") {
      const char* v = next("--report");
      if (!v) return false;
      args->report = v;
    } else if (a == "--workers") {
      const char* v = next("--workers");
      if (!v) return false;
      args->workers = std::atoi(v);
    } else if (a == "--thread-budget") {
      const char* v = next("--thread-budget");
      if (!v) return false;
      args->thread_budget = std::atoi(v);
    } else if (a == "--telemetry-port") {
      const char* v = next("--telemetry-port");
      if (!v) return false;
      args->telemetry_port = std::atoi(v);
    } else if (a == "--stall-timeout") {
      const char* v = next("--stall-timeout");
      if (!v) return false;
      args->stall_timeout_s = std::atof(v);
    } else if (a == "--heartbeat-interval") {
      const char* v = next("--heartbeat-interval");
      if (!v) return false;
      args->heartbeat_interval_s = std::atof(v);
    } else if (a == "--blackbox") {
      const char* v = next("--blackbox");
      if (!v) return false;
      args->blackbox = v;
    } else if (a == "--global-backend") {
      const char* v = next("--global-backend");
      if (!v) return false;
      const auto backend = p3d::place::ParseGlobalBackend(v);
      if (!backend.ok()) {
        std::fprintf(stderr, "%s\n", backend.status().message().c_str());
        return false;
      }
      args->override_backend = true;
      args->global_backend = *backend;
    } else if (a == "--quiet") {
      args->quiet = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      PrintUsage();
      return false;
    }
  }
  if (args->manifest.empty()) {
    std::fprintf(stderr, "--manifest is required\n");
    PrintUsage();
    return false;
  }
  if (args->workers < 1) {
    std::fprintf(stderr, "--workers must be >= 1\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  p3d::util::SetLogLevel(args.quiet ? p3d::util::LogLevel::kError
                                    : p3d::util::LogLevel::kWarn);

  // The black box is always on: a fixed-size ring per thread, dumped on
  // audit violations, watchdog stalls, cancellations, and fatal signals.
  // Recording never perturbs placement (DESIGN.md §7).
  static p3d::obs::RingRecorder ring;  // outlives every early-return path
  p3d::obs::InstallRingRecorder(&ring);
  if (!args.blackbox.empty()) {
    if (!p3d::obs::SetBlackBoxPath(args.blackbox)) {
      std::fprintf(stderr, "invalid --blackbox path\n");
      return 2;
    }
    p3d::obs::InstallCrashHandler();
  }

  // Process-wide registry behind /metrics: engine-level counters land here;
  // per-job registries stay thread-local inside the workers.
  p3d::obs::MetricsRegistry metrics;
  p3d::obs::InstallMetrics(&metrics);

  auto manifest_or = p3d::serve::LoadJobsManifest(args.manifest);
  if (!manifest_or.ok()) {
    std::fprintf(stderr, "%s\n", manifest_or.status().ToString().c_str());
    return manifest_or.status().code() ==
                   p3d::util::StatusCode::kInvalidArgument
               ? 2
               : 1;
  }
  p3d::serve::JobsManifest manifest = *std::move(manifest_or);
  if (manifest.jobs.empty()) {
    std::fprintf(stderr, "manifest has no jobs\n");
    return 2;
  }
  if (args.override_backend) {
    for (p3d::serve::JobSpec& spec : manifest.jobs) {
      spec.params.global_backend = args.global_backend;
    }
  }

  p3d::serve::JobEngineOptions engine_opts;
  engine_opts.num_workers = args.workers;
  engine_opts.thread_budget = args.thread_budget;
  engine_opts.stall_timeout_s = args.stall_timeout_s;
  p3d::serve::JobEngine engine(engine_opts);
  std::printf("placed: %zu jobs on %d workers (per-job thread budget %s)\n",
              manifest.jobs.size(), engine.num_workers(),
              engine.job_thread_budget() > 0
                  ? std::to_string(engine.job_thread_budget()).c_str()
                  : "unlimited");

  p3d::serve::TelemetryServer telemetry;
  if (args.telemetry_port >= 0) {
    p3d::serve::TelemetryOptions topts;
    topts.port = args.telemetry_port;
    topts.metrics = &metrics;
    topts.engine = &engine;
    const p3d::util::Status started = telemetry.Start(topts);
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "telemetry: http://127.0.0.1:%d  (/metrics /jobs "
                 "/healthz)\n",
                 telemetry.port());
  }

  // Streamed progress: the callback runs serialized on the completing
  // worker, so one line per finished job in completion order. Lines go to
  // stderr — stdout is reserved for the batch summary.
  const std::size_t total = manifest.jobs.size();
  engine.SetCompletionCallback([total](p3d::serve::JobHandle,
                                       const std::string& name,
                                       const p3d::serve::JobResult& result) {
    static std::size_t done = 0;  // callback is serialized by the engine
    ++done;
    if (result.status.ok()) {
      const auto& r = result.placement;
      std::fprintf(stderr,
                   "[%zu/%zu] %-24s ok         hpwl %.5g m | %lld vias | "
                   "%.2fs%s\n",
                   done, total, name.c_str(), r.hpwl_m, r.ilv_count,
                   result.wall_s, result.stalled ? " | STALLED" : "");
    } else {
      std::fprintf(stderr, "[%zu/%zu] %-24s %-10s %s\n", done, total,
                   name.c_str(),
                   p3d::util::IsCancelled(result.status) ? "cancelled"
                                                         : "FAILED",
                   result.status.message().c_str());
    }
  });

  p3d::util::Timer timer;
  std::vector<p3d::serve::JobHandle> handles;
  handles.reserve(manifest.jobs.size());
  for (p3d::serve::JobSpec& spec : manifest.jobs) {
    auto handle_or = engine.Submit(std::move(spec));
    if (!handle_or.ok()) {
      std::fprintf(stderr, "submit: %s\n",
                   handle_or.status().ToString().c_str());
      return 1;
    }
    handles.push_back(*handle_or);
  }

  // Optional heartbeat stream: one stderr line per running job per tick,
  // built from the same SnapshotJobs() view the /jobs endpoint serves.
  std::atomic<bool> reporter_stop{false};
  std::thread reporter;
  if (args.heartbeat_interval_s > 0.0) {
    reporter = std::thread([&engine, &reporter_stop,
                            interval = args.heartbeat_interval_s] {
      const auto tick = std::chrono::duration<double>(interval);
      while (!reporter_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(tick);
        if (reporter_stop.load(std::memory_order_acquire)) break;
        for (const auto& v : engine.SnapshotJobs()) {
          if (v.state != p3d::serve::JobState::kRunning) continue;
          std::fprintf(stderr,
                       "heartbeat %-24s phase %s#%d | %lld beats | "
                       "last %.1fs ago%s\n",
                       v.name.c_str(), v.phase.empty() ? "-" : v.phase.c_str(),
                       v.round, v.heartbeats, v.since_beat_s,
                       v.stalled ? " | STALLED" : "");
        }
      }
    });
  }

  engine.WaitAll();
  reporter_stop.store(true, std::memory_order_release);
  if (reporter.joinable()) reporter.join();
  const double wall_s = timer.Seconds();

  const p3d::serve::JobEngine::Stats stats = engine.GetStats();
  std::printf(
      "placed: %lld ok, %lld cancelled, %lld failed, %lld stalls in %.2fs "
      "(fea cache: %lld hits, %lld misses, %lld evictions)\n",
      stats.completed, stats.cancelled, stats.failed, stats.stalled, wall_s,
      stats.fea_cache.hits, stats.fea_cache.misses,
      stats.fea_cache.evictions);

  if (!args.report.empty()) {
    const p3d::obs::JsonValue report =
        p3d::serve::BuildBatchReport(engine, handles);
    std::string error;
    if (!p3d::serve::ValidateBatchReport(report, &error)) {
      std::fprintf(stderr, "internal: batch report invalid: %s\n",
                   error.c_str());
      return 1;
    }
    if (!p3d::serve::WriteBatchReport(report, args.report)) {
      std::fprintf(stderr, "failed to write %s\n", args.report.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.report.c_str());
  }

  if (stats.failed > 0) return 1;
  if (stats.cancelled > 0) return 4;
  return 0;
}
